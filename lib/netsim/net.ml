type fault_verdict =
  | Fault_pass
  | Fault_drop of Trace.drop_reason
  | Fault_deliver of { extra_delay : float; duplicate : bool }

type t = {
  engine : Engine.t;
  trace : Trace.t;
  mutable all_nodes : node list;
  mutable next_frame : int;
  mutable next_flow : int;
  mutable fault_hook :
    (link:string -> src:string -> dst:string -> fault_verdict) option;
  mutable icmp_errors : icmp_errors option;
      (* ICMP error signaling config; None (the default) keeps every drop
         silent and costs the fast path a single field load. *)
}

(* Opt-in ICMP error signaling: per-(node, offender) hold-down with a
   seeded LCG jitter so error emission is deterministic yet a packet storm
   cannot amplify into a synchronized error storm. *)
and icmp_errors = {
  err_min_interval : float;
  mutable err_lcg : int;
  mutable errors_sent : int;
  err_recent : (string * Ipv4_addr.t, float) Hashtbl.t;
}

and node = {
  name : string;
  router : bool;
  net : t;
  mutable node_ifaces : iface list;
  table : Routing.table;
  mutable policy : Filter.policy;
  mutable claimed : Ipv4_addr.t list;
  mutable override : (Ipv4_packet.t -> override_action option) option;
  handlers : (int, node -> iface option -> Ipv4_packet.t -> unit) Hashtbl.t;
  mutable observer : (Ipv4_packet.t -> unit) option;
  mutable intercept : (flow:int -> Ipv4_packet.t -> bool) option;
  arp_cache : (Ipv4_addr.t, Mac_addr.t) Hashtbl.t;
  arp_pending : (Ipv4_addr.t, pending) Hashtbl.t;
  reasm : Fragment.Reassembly.t;
  mutable option_penalty : float;
}

and iface = {
  ifname : string;
  owner : node;
  mac : Mac_addr.t;
  mutable addr : Ipv4_addr.t;
  mutable prefix : Ipv4_addr.Prefix.t;
  mutable mtu : int;
  mutable attachment : attachment;
  mutable up : bool;
  mutable proxy : Ipv4_addr.t list;
  mutable groups : Ipv4_addr.t list;
}

and attachment = Detached | Seg of segment | Ptp of ptp

and segment = {
  seg_name : string;
  seg_latency : float;
  seg_bandwidth : float option;
  seg_mtu : int;
  seg_loss : loss_gen option;
  mutable members : iface list;
}

and ptp = {
  ptp_name : string;
  ptp_latency : float;
  ptp_bandwidth : float option;
  ptp_loss : loss_gen option;
  mutable ends : iface list;
}

(* Deterministic per-link loss: a seeded linear congruential generator, so
   lossy-link experiments replay identically. *)
and loss_gen = { rate : float; mutable lcg : int }

and pending = { mutable queued : (iface * frame) list; mutable tries : int }

and frame = {
  fid : int;
  flow : int;
  content : content;
  l2_src : Mac_addr.t;
  l2_dst : Mac_addr.t;
  csum : int;
      (* Header checksum of the IP packet in [content], computed once at
         origin and updated incrementally (RFC 1624) at each forwarding
         hop; -1 when not computed (ARP, locally injected frames). *)
}

and content = Ip of Ipv4_packet.t | Arp_msg of arp

and arp = {
  op : [ `Request | `Reply ];
  spa : Ipv4_addr.t;
  sha : Mac_addr.t;
  tpa : Ipv4_addr.t;
}

and override_action =
  | Resubmit of Ipv4_packet.t
  | Via of {
      out : iface;
      next_hop : Ipv4_addr.t option;
      l2_dst : Mac_addr.t option;
    }
  | Discard of string

let create () =
  let engine = Engine.create () in
  let trace = Trace.create () in
  Trace.set_time_source trace (Engine.clock_cell engine);
  {
    engine;
    trace;
    all_nodes = [];
    next_frame = 0;
    next_flow = 0;
    fault_hook = None;
    icmp_errors = None;
  }

let set_fault_hook t f = t.fault_hook <- f

let enable_error_signaling ?(min_interval = 1.0) ?(seed = 0x1c3e) t =
  if min_interval < 0.0 then
    invalid_arg "Net: error-signaling min_interval must be >= 0";
  let errors_sent =
    match t.icmp_errors with Some c -> c.errors_sent | None -> 0
  in
  t.icmp_errors <-
    Some
      {
        err_min_interval = min_interval;
        err_lcg = seed land 0x3fffffff;
        errors_sent;
        err_recent = Hashtbl.create 32;
      }

let disable_error_signaling t = t.icmp_errors <- None
let error_signaling t = t.icmp_errors <> None

let icmp_errors_sent t =
  match t.icmp_errors with None -> 0 | Some c -> c.errors_sent

(* When on, every forwarding hop cross-checks the RFC 1624 incremental
   checksum against a full field-wise recompute.  Global (not per-world):
   it guards an algorithm, not a topology. *)
let checksum_debug = ref false
let set_checksum_debug b = checksum_debug := b
let set_tracing t b = Trace.set_enabled t.trace b

let engine t = t.engine
let trace t = t.trace
let now t = Engine.now t.engine
let run ?until t = Engine.run ?until t.engine

let add_node t name router =
  if List.exists (fun n -> n.name = name) t.all_nodes then
    invalid_arg (Printf.sprintf "Net: node %S already exists" name);
  let node =
    {
      name;
      router;
      net = t;
      node_ifaces = [];
      table = Routing.create ();
      policy = Filter.accept_all;
      claimed = [];
      override = None;
      handlers = Hashtbl.create 8;
      observer = None;
      intercept = None;
      arp_cache = Hashtbl.create 16;
      arp_pending = Hashtbl.create 4;
      reasm = Fragment.Reassembly.create ();
      option_penalty = (if router then 0.001 else 0.0);
    }
  in
  t.all_nodes <- node :: t.all_nodes;
  node

let add_host t name = add_node t name false
let add_router t name = add_node t name true
let find_node t name = List.find_opt (fun n -> n.name = name) t.all_nodes
let node_name n = n.name
let is_router n = n.router
let nodes t = List.rev t.all_nodes
let node_net n = n.net
let node_engine n = n.net.engine
let node_now n = Engine.now n.net.engine

let make_loss_gen ?loss ?(loss_seed = 0x5eed) () =
  match loss with
  | Some rate when rate > 0.0 ->
      if rate >= 1.0 then invalid_arg "Net: loss rate must be < 1.0";
      Some { rate; lcg = loss_seed land 0x3fffffff }
  | Some _ | None -> None

let loss_roll = function
  | None -> false
  | Some g ->
      g.lcg <- ((g.lcg * 1103515245) + 12345) land 0x3fffffff;
      float_of_int g.lcg /. 1073741824.0 < g.rate

let add_segment t ~name ?(latency = 0.0005) ?bandwidth ?(mtu = 1500) ?loss
    ?loss_seed () =
  ignore t;
  {
    seg_name = name;
    seg_latency = latency;
    seg_bandwidth = bandwidth;
    seg_mtu = mtu;
    seg_loss = make_loss_gen ?loss ?loss_seed ();
    members = [];
  }

let segment_name s = s.seg_name
let segment_mtu s = s.seg_mtu

let check_fresh_iface node ifname =
  if List.exists (fun i -> i.ifname = ifname) node.node_ifaces then
    invalid_arg
      (Printf.sprintf "Net: node %S already has interface %S" node.name ifname)

let install_connected_route iface =
  Routing.add iface.owner.table ~prefix:iface.prefix ~iface:iface.ifname ()

let attach node segment ~ifname ~addr ~prefix =
  check_fresh_iface node ifname;
  let iface =
    {
      ifname;
      owner = node;
      mac = Mac_addr.fresh ();
      addr;
      prefix;
      mtu = segment.seg_mtu;
      attachment = Seg segment;
      up = true;
      proxy = [];
      groups = [];
    }
  in
  node.node_ifaces <- node.node_ifaces @ [ iface ];
  segment.members <- iface :: segment.members;
  install_connected_route iface;
  iface

let p2p t ?(latency = 0.010) ?bandwidth ?(mtu = 1500) ?loss ?loss_seed ~prefix
    (node_a, name_a, addr_a) (node_b, name_b, addr_b) =
  check_fresh_iface node_a name_a;
  check_fresh_iface node_b name_b;
  let link =
    {
      ptp_name = Printf.sprintf "%s<->%s" node_a.name node_b.name;
      ptp_latency = latency;
      ptp_bandwidth = bandwidth;
      ptp_loss = make_loss_gen ?loss ?loss_seed ();
      ends = [];
    }
  in
  let mk node ifname addr =
    let iface =
      {
        ifname;
        owner = node;
        mac = Mac_addr.fresh ();
        addr;
        prefix;
        mtu;
        attachment = Ptp link;
        up = true;
        proxy = [];
        groups = [];
      }
    in
    node.node_ifaces <- node.node_ifaces @ [ iface ];
    link.ends <- link.ends @ [ iface ];
    install_connected_route iface;
    iface
  in
  ignore t;
  let ia = mk node_a name_a addr_a in
  let ib = mk node_b name_b addr_b in
  (ia, ib)

let iface_name i = i.ifname
let iface_addr i = i.addr
let iface_prefix i = i.prefix
let iface_mtu i = i.mtu

let iface_mac i =
  match i.attachment with Seg _ -> Some i.mac | Ptp _ | Detached -> None

let iface_node i = i.owner
let iface_up i = i.up

let set_iface_addr i ~addr ~prefix =
  (* Only this interface's connected route: another iface may legitimately
     hold a route for the same prefix. *)
  Routing.remove i.owner.table ~iface:i.ifname ~prefix:i.prefix ();
  i.addr <- addr;
  i.prefix <- prefix;
  install_connected_route i

let detach i =
  (match i.attachment with
  | Seg s -> s.members <- List.filter (fun m -> m != i) s.members
  | Ptp l -> l.ends <- List.filter (fun m -> m != i) l.ends
  | Detached -> ());
  i.attachment <- Detached;
  i.up <- false;
  Routing.remove_iface i.owner.table ~iface:i.ifname

let reattach i segment =
  (match i.attachment with
  | Detached -> ()
  | Seg _ | Ptp _ -> detach i);
  i.attachment <- Seg segment;
  i.mtu <- segment.seg_mtu;
  i.up <- true;
  segment.members <- i :: segment.members;
  install_connected_route i

let ifaces node = node.node_ifaces
let find_iface node name = List.find_opt (fun i -> i.ifname = name) node.node_ifaces
let routing node = node.table
let set_filter node p = node.policy <- p
let filter node = node.policy

let claim_address node addr =
  if not (List.exists (Ipv4_addr.equal addr) node.claimed) then
    node.claimed <- addr :: node.claimed

let unclaim_address node addr =
  node.claimed <- List.filter (fun a -> not (Ipv4_addr.equal a addr)) node.claimed

let owns_address node addr =
  List.exists (fun i -> i.up && Ipv4_addr.equal i.addr addr) node.node_ifaces
  || List.exists (Ipv4_addr.equal addr) node.claimed

let set_route_override node f = node.override <- f

let set_protocol_handler node protocol handler =
  Hashtbl.replace node.handlers (Ipv4_packet.protocol_to_int protocol) handler

let clear_protocol_handler node protocol =
  Hashtbl.remove node.handlers (Ipv4_packet.protocol_to_int protocol)

let set_delivery_observer node f = node.observer <- f
let set_intercept node f = node.intercept <- f
let set_option_processing_delay node d = node.option_penalty <- d
let option_processing_delay node = node.option_penalty

let add_proxy_arp _node iface addr =
  if not (List.exists (Ipv4_addr.equal addr) iface.proxy) then
    iface.proxy <- addr :: iface.proxy

let remove_proxy_arp _node iface addr =
  iface.proxy <- List.filter (fun a -> not (Ipv4_addr.equal a addr)) iface.proxy

let proxy_arp_entries node =
  List.concat_map (fun iface -> List.rev iface.proxy) node.node_ifaces

let arp_lookup node addr = Hashtbl.find_opt node.arp_cache addr
let clear_arp node = Hashtbl.reset node.arp_cache

let neighbour_on_segment node addr =
  List.find_map
    (fun i ->
      match i.attachment with
      | Seg s ->
          List.find_map
            (fun m ->
              if m != i && m.up && Ipv4_addr.equal m.addr addr then
                Some (i, m.mac)
              else None)
            s.members
      | Ptp _ | Detached -> None)
    node.node_ifaces

let neighbour_mac node addr =
  Option.map snd (neighbour_on_segment node addr)

let join_group _node iface group =
  if not (Ipv4_addr.is_multicast group) then
    invalid_arg
      (Printf.sprintf "Net.join_group: %s is not multicast"
         (Ipv4_addr.to_string group));
  if not (List.exists (Ipv4_addr.equal group) iface.groups) then
    iface.groups <- group :: iface.groups

let leave_group _node iface group =
  iface.groups <- List.filter (fun g -> not (Ipv4_addr.equal g group)) iface.groups

let new_flow t =
  t.next_flow <- t.next_flow + 1;
  t.next_flow

let new_frame_id t =
  t.next_frame <- t.next_frame + 1;
  t.next_frame

let frame_info (f : frame) pkt : Trace.frame_info =
  { Trace.id = f.fid; flow = f.flow; pkt }

let record node event = Trace.record node.net.trace ~time:(now node.net) event

(* Checked before building any trace event: when false, the per-hop
   fast path skips [frame_info]/event allocation entirely. *)
let tracing node = Trace.interested node.net.trace

(* Allocation-free tracing of the hottest per-hop events: when only fast
   taps (the flight recorder) are listening, these skip the
   frame_info/event/record graph that [record] builds.  [emit_*] are
   self-gated and stamp the time from the engine's clock cell, so the
   call sites below use them unguarded. *)
let trace_send node (f : frame) pkt =
  Trace.emit_send node.net.trace ~node:node.name ~id:f.fid ~flow:f.flow ~pkt

let trace_transmit node ~link (f : frame) pkt ~bytes =
  Trace.emit_transmit node.net.trace ~link ~id:f.fid ~flow:f.flow ~pkt ~bytes

let trace_forward node ~in_iface ~out_iface (f : frame) pkt =
  Trace.emit_forward node.net.trace ~node:node.name ~in_iface ~out_iface
    ~id:f.fid ~flow:f.flow ~pkt

let trace_deliver node (f : frame) pkt =
  Trace.emit_deliver node.net.trace ~node:node.name ~id:f.fid ~flow:f.flow ~pkt

let same_segment a b =
  List.exists
    (fun ia ->
      match ia.attachment with
      | Seg s -> List.exists (fun ib -> ib.owner == b && ib.up) s.members
      | Ptp _ | Detached -> false)
    a.node_ifaces

(* ---------------------------------------------------------------- *)
(* Data plane                                                        *)
(* ---------------------------------------------------------------- *)

let frame_bytes = function
  | Ip pkt -> Ipv4_packet.byte_length pkt
  | Arp_msg _ -> 28

let link_delay ~latency ~bandwidth bytes =
  latency
  +. (match bandwidth with
     | Some bps when bps > 0.0 -> float_of_int (bytes * 8) /. bps
     | _ -> 0.0)

let rec deliver_frame_to iface frame =
  if iface.up then
    match frame.content with
    | Arp_msg a -> arp_input iface frame a
    | Ip pkt -> ip_input iface frame pkt

(* Put a frame on the wire of [out]'s link.  [l2_dst] must already be
   resolved for segments. *)
and emit out frame =
  let node = out.owner in
  let bytes = frame_bytes frame.content in
  (match frame.content with
  | Ip pkt ->
      let link_name =
        match out.attachment with
        | Seg s -> s.seg_name
        | Ptp l -> l.ptp_name
        | Detached -> "detached"
      in
      trace_transmit node ~link:link_name frame pkt ~bytes
  | Arp_msg _ -> ());
  match out.attachment with
  | Detached -> (
      match frame.content with
      | Ip pkt ->
          if tracing node then
            record node
            (Trace.Drop
               {
                 node = node.name;
                 reason = Trace.Link_down;
                 frame = frame_info frame pkt;
               })
      | Arp_msg _ -> ())
  | Ptp l ->
      if loss_roll l.ptp_loss then record_link_loss node frame
      else begin
        let delay =
          link_delay ~latency:l.ptp_latency ~bandwidth:l.ptp_bandwidth bytes
        in
        let peers = List.filter (fun e -> e != out) l.ends in
        List.iter
          (fun peer -> fault_deliver node ~link:l.ptp_name ~delay peer frame)
          peers
      end
  | Seg s ->
      if loss_roll s.seg_loss then record_link_loss node frame
      else begin
        let delay =
          link_delay ~latency:s.seg_latency ~bandwidth:s.seg_bandwidth bytes
        in
        let targets =
          if Mac_addr.is_broadcast frame.l2_dst then
            List.filter (fun m -> m != out) s.members
          else
            List.filter (fun m -> Mac_addr.equal m.mac frame.l2_dst) s.members
        in
        List.iter
          (fun target -> fault_deliver node ~link:s.seg_name ~delay target frame)
          targets
      end

(* Per-target delivery, filtered through the network's fault plan (if any).
   The hook sees the link name and both node names; it can drop the copy
   (with a trace reason), delay it, or duplicate it. *)
and fault_deliver node ~link ~delay target frame =
  let schedule d =
    Engine.after node.net.engine d (fun () -> deliver_frame_to target frame)
  in
  match node.net.fault_hook with
  | None -> schedule delay
  | Some hook -> (
      match hook ~link ~src:node.name ~dst:target.owner.name with
      | Fault_pass -> schedule delay
      | Fault_drop reason -> record_fault_drop node reason frame
      | Fault_deliver { extra_delay; duplicate } ->
          schedule (delay +. extra_delay);
          if duplicate then schedule (delay +. extra_delay))

and record_fault_drop node reason frame =
  match frame.content with
  | Ip pkt ->
      if tracing node then
        record node
        (Trace.Drop
           { node = node.name; reason; frame = frame_info frame pkt })
  | Arp_msg _ -> ()

and record_link_loss node frame = record_fault_drop node Trace.Link_loss frame

and send_arp out ~l2_dst arp =
  let node = out.owner in
  let frame =
    {
      fid = new_frame_id node.net;
      flow = 0;
      content = Arp_msg arp;
      l2_src = out.mac;
      l2_dst;
      csum = -1;
    }
  in
  emit out frame

and arp_request_retry out next_hop =
  let node = out.owner in
  match Hashtbl.find_opt node.arp_pending next_hop with
  | None -> ()
  | Some pending when pending.tries >= 3 ->
      Hashtbl.remove node.arp_pending next_hop;
      List.iter
        (fun (_, frame) ->
          match frame.content with
          | Ip pkt ->
              (if tracing node then
                 record node
                   (Trace.Drop
                      {
                        node = node.name;
                        reason = Trace.Arp_unresolved;
                        frame = frame_info frame pkt;
                      }));
              (* Dead next hop: three unanswered ARP requests.  Signal the
                 sender rather than black-holing the queued packets. *)
              send_icmp_error node ~reason:Trace.Arp_unresolved
                ~code:Icmp_wire.Host_unreachable ~src:out.addr pkt
          | Arp_msg _ -> ())
        pending.queued
  | Some pending ->
      pending.tries <- pending.tries + 1;
      send_arp out ~l2_dst:Mac_addr.broadcast
        { op = `Request; spa = out.addr; sha = out.mac; tpa = next_hop };
      Engine.after node.net.engine 0.5 (fun () -> arp_request_retry out next_hop)

and arp_resolve out next_hop frame =
  let node = out.owner in
  match Hashtbl.find_opt node.arp_cache next_hop with
  | Some mac -> emit out { frame with l2_dst = mac }
  | None -> (
      match Hashtbl.find_opt node.arp_pending next_hop with
      | Some pending -> pending.queued <- pending.queued @ [ (out, frame) ]
      | None ->
          Hashtbl.replace node.arp_pending next_hop
            { queued = [ (out, frame) ]; tries = 0 };
          arp_request_retry out next_hop)

and arp_input iface frame arp =
  let node = iface.owner in
  if not (Ipv4_addr.equal arp.spa Ipv4_addr.any) then begin
    Hashtbl.replace node.arp_cache arp.spa arp.sha;
    (* Flush any frames waiting on this mapping. *)
    match Hashtbl.find_opt node.arp_pending arp.spa with
    | Some pending ->
        Hashtbl.remove node.arp_pending arp.spa;
        List.iter
          (fun (out, f) -> emit out { f with l2_dst = arp.sha })
          pending.queued
    | None -> ()
  end;
  match arp.op with
  | `Reply -> ()
  | `Request ->
      let answers =
        (iface.up && Ipv4_addr.equal iface.addr arp.tpa)
        || List.exists (Ipv4_addr.equal arp.tpa) iface.proxy
      in
      if answers then
        send_arp iface ~l2_dst:frame.l2_src
          { op = `Reply; spa = arp.tpa; sha = iface.mac; tpa = arp.spa }

and ip_output node ~out ~next_hop ?l2_dst ~flow ?(csum = -1) pkt =
  if not out.up then begin
    let f =
      { fid = new_frame_id node.net; flow; content = Ip pkt;
        l2_src = out.mac; l2_dst = Mac_addr.broadcast; csum }
    in
    if tracing node then
      record node
      (Trace.Drop
         { node = node.name; reason = Trace.Link_down; frame = frame_info f pkt })
  end
  else
    match Fragment.fragment ~mtu:out.mtu pkt with
    | Error _ ->
        let f =
          { fid = new_frame_id node.net; flow; content = Ip pkt;
            l2_src = out.mac; l2_dst = Mac_addr.broadcast; csum }
        in
        if tracing node then
          record node
          (Trace.Drop
             { node = node.name; reason = Trace.Mtu_exceeded; frame = frame_info f pkt });
        (* RFC 1191-style feedback so senders can adapt. *)
        if pkt.Ipv4_packet.protocol <> Ipv4_packet.P_icmp then begin
          let context = Bytes.create 0 in
          let icmp =
            Icmp_wire.Dest_unreachable
              { code = Icmp_wire.Fragmentation_needed; context }
          in
          let reply =
            Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src:out.addr
              ~dst:pkt.Ipv4_packet.src (Ipv4_packet.Icmp icmp)
          in
          originate node ~flow:(new_flow node.net) reply
        end
    | Ok pieces ->
        List.iter
          (fun piece ->
            let frame =
              {
                fid = new_frame_id node.net;
                flow;
                content = Ip piece;
                l2_src = out.mac;
                l2_dst = Mac_addr.broadcast;
                (* Fragmenting rewrites length/flags/offset, so each piece
                   gets its own full checksum; the common unfragmented case
                   returns the packet unchanged and keeps the carried one. *)
                csum =
                  (if piece == pkt then
                     if csum >= 0 then csum
                     else Ipv4_packet.header_checksum pkt
                   else Ipv4_packet.header_checksum piece);
              }
            in
            match out.attachment with
            | Ptp _ | Detached -> emit out frame
            | Seg _ -> (
                match l2_dst with
                | Some mac -> emit out { frame with l2_dst = mac }
                | None ->
                    let dst = piece.Ipv4_packet.dst in
                    if
                      Ipv4_addr.equal dst Ipv4_addr.broadcast
                      || Ipv4_addr.is_multicast dst
                      || Ipv4_addr.equal dst (Ipv4_addr.Prefix.broadcast_addr out.prefix)
                    then emit out frame
                    else arp_resolve out next_hop frame))
          pieces

and ip_input iface frame pkt =
  let node = iface.owner in
  match Filter.evaluate node.policy ~in_iface:iface.ifname pkt with
  | Filter.Reject reason ->
      (if tracing node then
         record node
           (Trace.Drop
              { node = node.name; reason; frame = frame_info frame pkt }));
      (* §7.1.2: a filtering router that signals its refusal lets the
         sender adapt its delivery method instead of timing out. *)
      send_icmp_error node ~reason ~code:Icmp_wire.Admin_prohibited
        ~src:iface.addr pkt
  | Filter.Pass ->
      let dst = pkt.Ipv4_packet.dst in
      let local =
        owns_address node dst
        || Ipv4_addr.equal dst Ipv4_addr.broadcast
        || Ipv4_addr.equal dst (Ipv4_addr.Prefix.broadcast_addr iface.prefix)
        || (Ipv4_addr.is_multicast dst
           && List.exists (Ipv4_addr.equal dst) iface.groups)
      in
      if local then deliver node (Some iface) frame pkt
      else if Ipv4_addr.is_multicast dst || Ipv4_addr.equal dst Ipv4_addr.broadcast
      then (* not joined / not ours: ignore silently *) ()
      else if node.router then forward node iface frame pkt
      else
        if tracing node then
          record node
          (Trace.Drop
             { node = node.name; reason = Trace.Not_for_me; frame = frame_info frame pkt })

and deliver node in_iface frame pkt =
  match Fragment.Reassembly.add node.reasm ~now:(now node.net) pkt with
  | None -> (* incomplete datagram; wait for more fragments *) ()
  | Some whole -> (
      (* Loose source routing: a packet addressed to us whose route is not
         exhausted is rewritten toward its next listed hop (RFC 791). *)
      match Ipv4_options.lsr_next_hop whole.Ipv4_packet.options with
      | Some next -> (
          match
            Ipv4_options.advance_lsr whole.Ipv4_packet.options
              ~here:whole.Ipv4_packet.dst
          with
          | Some options ->
              let rerouted =
                { whole with Ipv4_packet.dst = next; options }
              in
              if tracing node then
                record node
                (Trace.Forward
                   {
                     node = node.name;
                     in_iface = "lsr";
                     out_iface = "lsr";
                     frame = frame_info frame rerouted;
                   });
              originate node ~flow:frame.flow rerouted
          | None -> ())
      | None -> deliver_local node in_iface frame whole)

and deliver_local node in_iface frame whole =
      let consumed =
        match node.intercept with
        | Some hook ->
            Prof.enter Prof.Agent;
            let c = hook ~flow:frame.flow whole in
            Prof.leave Prof.Agent;
            c
        | None -> false
      in
      if not consumed then begin
        trace_deliver node frame whole;
        (match node.observer with Some f -> f whole | None -> ());
        let proto = Ipv4_packet.protocol_to_int whole.Ipv4_packet.protocol in
        match Hashtbl.find_opt node.handlers proto with
        | Some handler -> handler node in_iface whole
        | None -> ()
      end

and forward node in_iface frame pkt =
  match Ipv4_packet.decrement_ttl pkt with
  | None ->
      if tracing node then
        record node
        (Trace.Drop
           { node = node.name; reason = Trace.Ttl_expired; frame = frame_info frame pkt })
  | Some pkt ->
      forward_routed node in_iface frame
        ~csum:
          (if frame.csum >= 0 then begin
             (* Only the TTL/protocol word changed: RFC 1624 incremental
                update instead of re-summing the whole header.  [frame.csum]
                belongs to the pre-decrement packet, so derive from the
                original frame content. *)
             let c =
               match frame.content with
               | Ip orig ->
                   Ipv4_packet.decrement_ttl_checksum ~checksum:frame.csum
                     orig
               | Arp_msg _ -> Ipv4_packet.header_checksum pkt
             in
             if !checksum_debug then begin
               let full = Ipv4_packet.header_checksum pkt in
               if c <> full then
                 failwith
                   (Printf.sprintf
                      "Net.forward: incremental checksum %#x <> recompute %#x"
                      c full)
             end;
             c
           end
           else Ipv4_packet.header_checksum pkt)
        pkt

and forward_routed node in_iface frame ~csum pkt =
  (match Routing.lookup node.table pkt.Ipv4_packet.dst with
      | None ->
          (if tracing node then
             record node
               (Trace.Drop
                  { node = node.name; reason = Trace.No_route;
                    frame = frame_info frame pkt }));
          send_icmp_error node ~reason:Trace.No_route
            ~code:Icmp_wire.Host_unreachable ~src:in_iface.addr pkt
      | Some route -> (
          match find_iface node route.Routing.iface with
          | None ->
              (if tracing node then
                 record node
                   (Trace.Drop
                      { node = node.name; reason = Trace.No_route;
                        frame = frame_info frame pkt }));
              send_icmp_error node ~reason:Trace.No_route
                ~code:Icmp_wire.Host_unreachable ~src:in_iface.addr pkt
          | Some out ->
              trace_forward node ~in_iface:in_iface.ifname
                ~out_iface:out.ifname frame pkt;
              let next_hop =
                match route.Routing.gateway with
                | Some g -> g
                | None -> pkt.Ipv4_packet.dst
              in
              (* Optioned packets take the router's slow path (§4). *)
              if
                node.option_penalty > 0.0
                && Ipv4_options.has_options pkt.Ipv4_packet.options
              then
                Engine.after node.net.engine node.option_penalty (fun () ->
                    ip_output node ~out ~next_hop ~flow:frame.flow ~csum pkt)
              else ip_output node ~out ~next_hop ~flow:frame.flow ~csum pkt))

(* Answer a drop with a real RFC 792 error quoting the offending datagram
   (IP header + 8 payload bytes), so senders get fast negative feedback
   instead of a silent black hole.  Opt-in per net
   ([enable_error_signaling]); never errors about ICMP, unspecified,
   broadcast or multicast traffic; held down per (node, offender) with
   seeded jitter. *)
and send_icmp_error node ~reason ~code ~src pkt =
  match node.net.icmp_errors with
  | None -> ()
  | Some cfg ->
      let offender = pkt.Ipv4_packet.src in
      if
        pkt.Ipv4_packet.protocol <> Ipv4_packet.P_icmp
        && (not (Ipv4_addr.equal src Ipv4_addr.any))
        && (not (Ipv4_addr.equal offender Ipv4_addr.any))
        && (not (Ipv4_addr.equal offender Ipv4_addr.broadcast))
        && (not (Ipv4_addr.is_multicast offender))
        && (not (Ipv4_addr.equal pkt.Ipv4_packet.dst Ipv4_addr.broadcast))
        && not (Ipv4_addr.is_multicast pkt.Ipv4_packet.dst)
      then begin
        let key = (node.name, offender) in
        let t_now = now node.net in
        let due =
          match Hashtbl.find_opt cfg.err_recent key with
          | None -> true
          | Some last ->
              cfg.err_lcg <-
                ((cfg.err_lcg * 1103515245) + 12345) land 0x3fffffff;
              let jitter = float_of_int cfg.err_lcg /. 1073741824.0 in
              t_now -. last
              >= cfg.err_min_interval *. (1.0 +. (0.25 *. jitter))
        in
        if due then begin
          Hashtbl.replace cfg.err_recent key t_now;
          cfg.errors_sent <- cfg.errors_sent + 1;
          let context = Icmp_wire.quote_context (Ipv4_packet.encode pkt) in
          let icmp = Icmp_wire.Dest_unreachable { code; context } in
          let reply =
            Ipv4_packet.make ~protocol:Ipv4_packet.P_icmp ~src ~dst:offender
              (Ipv4_packet.Icmp icmp)
          in
          let flow = new_flow node.net in
          if tracing node then
            record node
              (Trace.Icmp_error
                 {
                   node = node.name;
                   reason;
                   frame = { Trace.id = 0; flow; pkt = reply };
                 });
          originate node ~flow reply
        end
      end

(* Origin transmission: loopback, override hook, routing table. *)
and originate ?(depth = 0) node ~flow ?via ?l2_dst pkt =
  if depth > 8 then
    invalid_arg "Net.send: route-override resubmit loop (depth > 8)"
  else begin
    (* Fill an unspecified source from the outgoing interface only after
       the route-override hook has seen the packet: an unbound source is
       itself a signal the mobility policy keys on (§7.1.1). *)
    let fill_src out pkt =
      if Ipv4_addr.equal pkt.Ipv4_packet.src Ipv4_addr.any then
        { pkt with Ipv4_packet.src = out.addr }
      else pkt
    in
    let fake_frame pkt =
      { fid = new_frame_id node.net; flow; content = Ip pkt;
        l2_src = Mac_addr.broadcast; l2_dst = Mac_addr.broadcast;
        csum = Ipv4_packet.header_checksum pkt }
    in
    let emit_via out ~next_hop ?l2_dst pkt =
      let pkt = fill_src out pkt in
      let f = fake_frame pkt in
      trace_send node f pkt;
      ip_output node ~out ~next_hop ?l2_dst ~flow ~csum:f.csum pkt
    in
    if owns_address node pkt.Ipv4_packet.dst then begin
      (* Loopback delivery: never touches a wire. *)
      let pkt =
        if Ipv4_addr.equal pkt.Ipv4_packet.src Ipv4_addr.any then
          { pkt with Ipv4_packet.src = pkt.Ipv4_packet.dst }
        else pkt
      in
      let f = fake_frame pkt in
      trace_send node f pkt;
      deliver node None f pkt
    end
    else begin
      let decision =
        match node.override with
        | Some hook ->
            Prof.enter Prof.Agent;
            let d = hook pkt in
            Prof.leave Prof.Agent;
            d
        | None -> None
      in
      match decision with
      | Some (Resubmit pkt') ->
          originate ~depth:(depth + 1) node ~flow ?via ?l2_dst pkt'
      | Some (Discard reason) ->
          let f = fake_frame pkt in
          if tracing node then
            record node
            (Trace.Drop
               {
                 node = node.name;
                 reason = Trace.Custom reason;
                 frame = frame_info f pkt;
               })
      | Some (Via { out; next_hop; l2_dst = forced_l2 }) ->
          let next_hop = Option.value next_hop ~default:pkt.Ipv4_packet.dst in
          emit_via out ~next_hop ?l2_dst:forced_l2 pkt
      | None -> (
          match via with
          | Some out -> emit_via out ~next_hop:pkt.Ipv4_packet.dst ?l2_dst pkt
          | None -> (
              match Routing.lookup node.table pkt.Ipv4_packet.dst with
              | None ->
                  let f = fake_frame pkt in
                  if tracing node then
                    record node
                    (Trace.Drop
                       {
                         node = node.name;
                         reason = Trace.No_route;
                         frame = frame_info f pkt;
                       })
              | Some route -> (
                  match find_iface node route.Routing.iface with
                  | None ->
                      let f = fake_frame pkt in
                      if tracing node then
                        record node
                        (Trace.Drop
                           {
                             node = node.name;
                             reason = Trace.No_route;
                             frame = frame_info f pkt;
                           })
                  | Some out ->
                      let next_hop =
                        match route.Routing.gateway with
                        | Some g -> g
                        | None -> pkt.Ipv4_packet.dst
                      in
                      emit_via out ~next_hop ?l2_dst pkt)))
    end
  end

let send node ?flow ?via ?l2_dst pkt =
  let flow = match flow with Some f -> f | None -> new_flow node.net in
  originate node ~flow ?via ?l2_dst pkt;
  flow

let inject_local node ~flow pkt =
  let frame =
    { fid = new_frame_id node.net; flow; content = Ip pkt;
      l2_src = Mac_addr.broadcast; l2_dst = Mac_addr.broadcast; csum = -1 }
  in
  if tracing node then
    record node
      (Trace.Deliver { node = node.name; frame = frame_info frame pkt });
  (match node.observer with Some f -> f pkt | None -> ());
  let proto = Ipv4_packet.protocol_to_int pkt.Ipv4_packet.protocol in
  (match Hashtbl.find_opt node.handlers proto with
  | Some handler -> handler node None pkt
  | None -> ())

let gratuitous_arp _node iface addr =
  send_arp iface ~l2_dst:Mac_addr.broadcast
    { op = `Reply; spa = addr; sha = iface.mac; tpa = addr }
