(** ICMP message wire format (RFC 792), extended with the experimental
    care-of-address advertisement the paper proposes (§3.2): when the home
    agent forwards a packet it may send an ICMP message back to the source
    informing it of the mobile host's current care-of address, so that a
    mobile-aware correspondent can switch from In-IE to In-DE.

    The care-of advertisement uses ICMP type 40 (an unassigned value in
    1996), carrying the home address, care-of address, and a lifetime. *)

type unreach_code =
  | Net_unreachable
  | Host_unreachable
  | Protocol_unreachable
  | Port_unreachable
  | Fragmentation_needed
  | Admin_prohibited

type t =
  | Echo_request of { ident : int; seq : int; payload : Bytes.t }
  | Echo_reply of { ident : int; seq : int; payload : Bytes.t }
  | Dest_unreachable of { code : unreach_code; context : Bytes.t }
      (** [context] is the leading bytes of the offending datagram. *)
  | Time_exceeded of { context : Bytes.t }
  | Care_of_advert of {
      home : Ipv4_addr.t;
      care_of : Ipv4_addr.t;
      lifetime : int;  (** seconds; 0 revokes the binding *)
    }

val care_of_advert_type : int
(** The ICMP type number (40) used for the care-of advertisement. *)

val quote_context : Bytes.t -> Bytes.t
(** [quote_context wire] extracts the RFC 792 error context from an encoded
    IPv4 datagram: the IP header (per its IHL field) plus the first 8 bytes
    of payload, truncated to the datagram's actual length.  Use as the
    [context] of a {!Dest_unreachable} or {!Time_exceeded}. *)

val context_original : Bytes.t -> (Ipv4_addr.t * Ipv4_addr.t) option
(** [context_original context] recovers the (source, destination) addresses
    of the offending datagram quoted in an error [context], or [None] when
    the context is too short to contain a full IP header. *)

val byte_length : t -> int
val encode : t -> Bytes.t
val decode : Bytes.t -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_unreach_code : Format.formatter -> unreach_code -> unit
