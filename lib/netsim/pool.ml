(* Per-shard byte-buffer pool: recycled payload buffers for workload
   generators, so a sharded capacity run reuses each shard's buffers
   instead of allocating (and promoting) a fresh payload per datagram.

   Buffers are pooled by exact size in an {!Addr_map} keyed on the byte
   length, each class a simple LIFO list.  A pool belongs to one shard
   and is only touched by that shard's domain during a parallel window,
   so there is no locking; cross-shard traffic releases into the
   *receiving* shard's pool (the last domain to touch the buffer).

   [release] does not zero the buffer — callers own initialisation, as
   they would with [Bytes.create]. *)

type t = {
  classes : Bytes.t list Addr_map.t;
  mutable live : int;  (* buffers handed out and not yet released *)
  mutable hits : int;
  mutable misses : int;
  max_per_class : int;
}

let create ?(max_per_class = 256) () =
  { classes = Addr_map.create (); live = 0; hits = 0; misses = 0; max_per_class }

let alloc t size =
  if size < 0 then invalid_arg "Pool.alloc: negative size";
  t.live <- t.live + 1;
  match Addr_map.find t.classes size with
  | Some (b :: rest) ->
      Addr_map.replace t.classes size rest;
      t.hits <- t.hits + 1;
      b
  | Some [] | None ->
      t.misses <- t.misses + 1;
      Bytes.create size

let release t b =
  let size = Bytes.length b in
  t.live <- t.live - 1;
  let existing = match Addr_map.find t.classes size with
    | Some l -> l
    | None -> []
  in
  (* Bound each class so a burst cannot pin memory forever. *)
  if List.length existing < t.max_per_class then
    Addr_map.replace t.classes size (b :: existing)

let hits t = t.hits
let misses t = t.misses
let live t = t.live

let pooled t =
  Addr_map.fold (fun _ l acc -> acc + List.length l) t.classes 0
