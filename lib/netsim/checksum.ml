let fold_carries sum =
  let rec loop s = if s > 0xffff then loop ((s land 0xffff) + (s lsr 16)) else s in
  loop sum

let ones_complement_sum ?(initial = 0) buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.ones_complement_sum: range out of bounds";
  let sum = ref initial in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8)
           + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  fold_carries !sum

let finish sum = lnot (fold_carries sum) land 0xffff
let compute buf = finish (ones_complement_sum buf 0 (Bytes.length buf))
let compute_sub buf off len = finish (ones_complement_sum buf off len)

let pseudo_header_sum ~src ~dst ~protocol ~length =
  let word32 a =
    let x = Ipv4_addr.to_int32 a in
    (Int32.to_int (Int32.shift_right_logical x 16) land 0xffff)
    + (Int32.to_int x land 0xffff)
  in
  fold_carries (word32 src + word32 dst + protocol + length)

let valid buf =
  fold_carries (ones_complement_sum buf 0 (Bytes.length buf)) = 0xffff
