let fold_carries sum =
  let rec loop s = if s > 0xffff then loop ((s land 0xffff) + (s lsr 16)) else s in
  loop sum

(* Unaligned, bounds-unchecked native-endian loads (the primitives behind
   [Bytes.get_uint16_ne]/[Bytes.get_int64_ne]).  Only reachable from
   [ones_complement_sum], which validates the whole range once up front. *)
external get16u : Bytes.t -> int -> int = "%caml_bytes_get16u"
external get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

let swap16 x = ((x land 0xff) lsl 8) lor (x lsr 8)

(* Word-at-a-time summing in native byte order.  The one's complement sum
   is associative modulo 0xffff and byte-order independent (RFC 1071 §2):
   summing the 16-bit words as the host reads them and byte-swapping the
   folded result once yields exactly the network-order sum, because
   swap16(x) = 256*x (mod 0xffff) and multiplication distributes over the
   end-around-carry addition.  OCaml's native int is 63-bit, so the raw
   word sum stays exact for buffers far beyond any packet size before the
   single fold at the end. *)
(* Tail-recursive so the accumulator lives in a register rather than a
   loop-carried store.  Eight bytes per 64-bit read: each read contributes
   its two 32-bit halves, each of which is [lane1 * 2^16 + lane0], and
   2^16 = 1 (mod 0xffff), so the halves fold to the same 16-bit sum. *)
let rec sum_words buf i stop acc =
  if i + 8 <= stop then
    let x = get64u buf i in
    sum_words buf (i + 8) stop
      (acc
      + Int64.to_int (Int64.shift_right_logical x 32)
      + (Int64.to_int x land 0xffffffff))
  else if i + 2 <= stop then sum_words buf (i + 2) stop (acc + get16u buf i)
  else if i < stop then
    (* Trailing odd byte: the high half of a zero-padded big-endian word,
       which in the host's lane order is [b lsl 8] (BE) or plain [b]
       (LE). *)
    let b = Char.code (Bytes.unsafe_get buf i) in
    acc + if Sys.big_endian then b lsl 8 else b
  else acc

let ones_complement_sum ?(initial = 0) buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.ones_complement_sum: range out of bounds";
  let init = if Sys.big_endian then initial else swap16 initial in
  let folded = fold_carries (sum_words buf off (off + len) init) in
  if Sys.big_endian then folded else swap16 folded

let finish sum = lnot (fold_carries sum) land 0xffff

let compute buf =
  Prof.enter Prof.Checksum;
  let c = finish (ones_complement_sum buf 0 (Bytes.length buf)) in
  Prof.leave Prof.Checksum;
  c

let compute_sub buf off len =
  Prof.enter Prof.Checksum;
  let c = finish (ones_complement_sum buf off len) in
  Prof.leave Prof.Checksum;
  c

(* RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m') — update a checksum for the
   rewrite of one 16-bit header word without touching the other words. *)
let incremental_update ~checksum ~old_word ~new_word =
  if checksum land 0xffff <> checksum then
    invalid_arg "Checksum.incremental_update: checksum out of range";
  if old_word land 0xffff <> old_word || new_word land 0xffff <> new_word then
    invalid_arg "Checksum.incremental_update: word out of range";
  lnot
    (fold_carries
       ((lnot checksum land 0xffff) + (lnot old_word land 0xffff) + new_word))
  land 0xffff

let pseudo_header_sum ~src ~dst ~protocol ~length =
  let word32 a =
    let x = Ipv4_addr.to_int32 a in
    (Int32.to_int (Int32.shift_right_logical x 16) land 0xffff)
    + (Int32.to_int x land 0xffff)
  in
  fold_carries (word32 src + word32 dst + protocol + length)

let valid buf =
  fold_carries (ones_complement_sum buf 0 (Bytes.length buf)) = 0xffff
