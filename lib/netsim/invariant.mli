(** The online invariant oracle: named checks evaluated while a
    simulation runs.

    An oracle attaches to a {!Net.t} and evaluates three styles of check:

    - {e polled} checks ({!add_check}) run when {!start}'s bounded
      periodic tick fires, at every {!check_now}, and once at {!finish} —
      conditions that must always hold (binding lifetimes, cache and
      proxy-ARP hygiene, selector discipline);
    - {e watches} ({!add_watch}) run on every {!Trace} record as it is
      written, via the per-trace observer — per-packet properties;
    - {e final} checks ({!add_final}) run once at {!finish} — eventual
      properties (recovery after the last fault of a plan).

    A check returns [Some detail] to report a violation.  Each invariant
    is recorded at the simulation time of its {e first} violation (with a
    running count of repeats), so a persistently-broken condition is one
    finding, not a flood.

    The engine knows nothing about Mobile IP: concrete invariants are
    built above the simulator (e.g. [Scenarios.Oracle]) from the mobility
    layer's state-exposure accessors. *)

type violation = { name : string; time : float; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type t

val create : Net.t -> t
val net : t -> Net.t

val add_check : t -> name:string -> (unit -> string option) -> unit
(** Register a polled check. *)

val add_final : t -> name:string -> (unit -> string option) -> unit
(** Register a check run once, at {!finish}. *)

val add_watch : t -> name:string -> (Trace.record -> string option) -> unit
(** Register a per-trace-record check (installs a trace observer on first
    use, via {!Trace.add_observer} — it composes with other taps). *)

val set_on_violation : t -> (violation -> unit) option -> unit
(** Install (or clear) a callback fired at the {e first} violation of
    each invariant, as it is recorded — the hook a flight recorder uses
    to snapshot the events leading up to a failure before the run moves
    on.  Repeat violations of the same invariant do not re-fire. *)

val start : t -> ?interval:float -> ?ticks:int -> unit -> unit
(** Run the polled checks now and then every [interval] simulated seconds
    (default 1) for [ticks] periods (default 60 — bounded so simulations
    drain).  @raise Invalid_argument if [interval <= 0]. *)

val check_now : t -> unit
(** Run every polled check immediately. *)

val finish : t -> unit
(** Run the polled checks one last time, then the final checks; stop the
    periodic tick and detach the trace observer. *)

val violations : t -> violation list
(** First violation of each invariant, in order of occurrence. *)

val violated : t -> bool

val names : t -> string list
(** Distinct violated invariant names, sorted. *)

val count : t -> string -> int
(** How many times the named invariant was observed violated. *)

val checks_run : t -> int
