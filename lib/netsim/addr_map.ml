(* Int-keyed open-addressing hash map for the data plane's per-node
   lookups (ARP cache, pending-ARP queues, protocol handlers).

   The generic [(Ipv4_addr.t, _) Hashtbl.t] these replace pays a
   polymorphic [Hashtbl.hash] walk over a boxed int32 plus bucket-list
   chasing on every packet.  Addresses are 32-bit values, so the map
   keys on their (non-negative) int image: one multiply-and-mask hash,
   linear probing over a flat int array, and a parallel value array
   whose [Some v] cells are returned as-is — a hit allocates nothing.

   Empty slots hold [empty_key] = min_int, which no 32-bit address or
   protocol number maps to.  Deletion uses the standard backward-shift
   compaction for linear probing, so there are no tombstones and probe
   chains stay short. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a option array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;
}

let empty_key = min_int

let create ?(size = 16) () =
  let cap = ref 8 in
  while !cap < size do
    cap := !cap * 2
  done;
  {
    keys = Array.make !cap empty_key;
    vals = Array.make !cap None;
    mask = !cap - 1;
    size = 0;
  }

let length t = t.size

(* Fibonacci-style multiplicative hash over the low bits. *)
let slot t key = key * 0x9E3779B1 land t.mask

let of_addr (a : Ipv4_addr.t) = Int32.to_int (Ipv4_addr.to_int32 a) land 0xFFFFFFFF

let rec probe t key i =
  let k = Array.unsafe_get t.keys i in
  if k = key || k = empty_key then i else probe t key ((i + 1) land t.mask)

let find t key =
  let i = probe t key (slot t key) in
  if Array.unsafe_get t.keys i = key then Array.unsafe_get t.vals i else None

let mem t key =
  let i = probe t key (slot t key) in
  Array.unsafe_get t.keys i = key

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * Array.length old_keys in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap None;
  t.mask <- cap - 1;
  t.size <- 0;
  Array.iteri
    (fun i k ->
      if k <> empty_key then begin
        let j = probe t k (slot t k) in
        t.keys.(j) <- k;
        t.vals.(j) <- old_vals.(i);
        t.size <- t.size + 1
      end)
    old_keys

let replace t key v =
  let i = probe t key (slot t key) in
  if t.keys.(i) = key then t.vals.(i) <- Some v
  else begin
    t.keys.(i) <- key;
    t.vals.(i) <- Some v;
    t.size <- t.size + 1;
    (* Keep load factor under 1/2 so probe chains stay short. *)
    if 2 * t.size > t.mask then grow t
  end

let remove t key =
  let i = probe t key (slot t key) in
  if t.keys.(i) = key then begin
    t.size <- t.size - 1;
    (* Backward-shift compaction: walk the probe chain after [i] and pull
       back every entry whose home slot precedes the hole. *)
    let hole = ref i in
    let j = ref ((i + 1) land t.mask) in
    let continue = ref true in
    while !continue do
      let k = t.keys.(!j) in
      if k = empty_key then continue := false
      else begin
        let home = slot t k in
        (* [k] may move back into the hole iff the hole lies cyclically
           between its home slot and its current position. *)
        let between =
          if !hole <= !j then home <= !hole || home > !j
          else home <= !hole && home > !j
        in
        if between then begin
          t.keys.(!hole) <- k;
          t.vals.(!hole) <- t.vals.(!j);
          hole := !j
        end;
        j := (!j + 1) land t.mask
      end
    done;
    t.keys.(!hole) <- empty_key;
    t.vals.(!hole) <- None
  end

let reset t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  Array.fill t.vals 0 (Array.length t.vals) None;
  t.size <- 0

let iter f t =
  Array.iteri
    (fun i k ->
      if k <> empty_key then
        match t.vals.(i) with Some v -> f k v | None -> ())
    t.keys

let fold f t acc =
  let acc = ref acc in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
