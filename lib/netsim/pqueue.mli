(** A mutable binary min-heap keyed by float priority with FIFO tie-breaking.

    This is the event queue underlying the discrete-event {!Engine}.
    Insertion order is preserved among equal priorities so that events
    scheduled for the same instant run in the order they were scheduled —
    essential for deterministic simulation. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> priority:float -> 'a -> unit
(** Insert an element. O(log n). *)

val add_seq : 'a t -> priority:float -> seq:int -> 'a -> unit
(** Insert with an explicit tie-break sequence number instead of the
    queue's own counter.  The sharded engine uses this to draw sequence
    numbers from one shared counter across several queues, so that
    same-timestamp events keep one global FIFO order no matter which
    shard's queue they sit in.  Mixing [add] and [add_seq] on one queue
    is allowed but the caller owns uniqueness of the tie-break order. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, FIFO among ties.
    O(log n). *)

val peek : 'a t -> (float * 'a) option
(** The minimum-priority element without removing it. O(1). *)

val min_key : 'a t -> (float * int) option
(** The minimum element's full sort key [(priority, seq)] without removing
    it — what a multi-queue merge loop compares to pick the globally next
    event. O(1). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
