(** A mutable binary min-heap keyed by float priority with FIFO tie-breaking.

    This is the event queue underlying the discrete-event {!Engine}.
    Insertion order is preserved among equal priorities so that events
    scheduled for the same instant run in the order they were scheduled —
    essential for deterministic simulation. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> priority:float -> 'a -> unit
(** Insert an element. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, FIFO among ties.
    O(log n). *)

val peek : 'a t -> (float * 'a) option
(** The minimum-priority element without removing it. O(1). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
