(** A minimal JSON value type with a printer and a parser.

    The simulator and the observability layer need machine-readable output
    (fault-plan repro files, JSONL trace export, metric snapshots, bench
    results) without adding dependencies the container does not ship, so
    this is a small self-contained implementation: no streaming, strings
    are OCaml strings (UTF-8 pass
    through; [\uXXXX] escapes are decoded to UTF-8 on parse), numbers are
    [Int] when they look integral on the wire and [Float] otherwise.
    Floats are printed with the shortest decimal representation that
    round-trips, so [of_string (to_string j) = Ok j] for every value this
    library itself produces. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering (no spaces — suitable for JSONL). *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parse a single JSON value; trailing garbage is an error. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on absent field or non-object. *)

val get_int : t -> int option
(** [Int], or a [Float] with an integral value. *)

val get_float : t -> float option
(** [Float] or [Int]. *)

val get_string : t -> string option
val get_bool : t -> bool option
val get_list : t -> t list option
val pp : Format.formatter -> t -> unit
