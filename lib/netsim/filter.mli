(** Boundary-router packet policies (paper §3.1).

    Three behaviours motivate the whole 4x4 design space, and all are
    implemented here:

    - {b Ingress source-address filtering} (Figure 2): a security-conscious
      boundary router drops packets arriving from outside the domain whose
      source address claims to originate inside it, because accepting them
      would let any Internet host impersonate a trusted internal machine.
    - {b Transit-traffic prohibition}: an end-user ("tail circuit") network
      drops packets whose source address belongs to a foreign network,
      since such packets indicate inappropriate transit use.
    - {b Firewalls}: stricter rule sets; the paper anticipates the firewall
      itself acting as the mobile user's home agent, so a typical firewall
      policy admits encapsulated tunnels to the home agent while rejecting
      other unsolicited outside traffic.

    A policy is an ordered rule list evaluated at packet arrival on an
    interface; the first matching rule decides.  [Accept_all] is the
    default for hosts and permissive routers. *)

type verdict = Pass | Reject of Trace.drop_reason

type rule

val rule_to_string : rule -> string

(** {1 Rule constructors} *)

val ingress_source_filter :
  external_iface:string -> inside:Ipv4_addr.Prefix.t list -> rule
(** Drop packets arriving on [external_iface] whose source lies inside one
    of the domain's own prefixes (reason {!Trace.Ingress_filter}). *)

val no_transit :
  internal_iface:string -> inside:Ipv4_addr.Prefix.t list -> rule
(** Drop packets arriving on [internal_iface] whose source is foreign to
    the domain (reason {!Trace.Transit_filter}). *)

val firewall_allow_tunnel_to :
  external_iface:string -> home_agent:Ipv4_addr.t -> rule
(** Accept encapsulated (IPIP, GRE or minimal) packets addressed to the
    home agent even when arriving from outside — the "firewall as home
    agent" deployment of §3.1. *)

val firewall_block_external : external_iface:string -> name:string -> rule
(** Drop everything else arriving on the external interface (reason
    {!Trace.Firewall}).  Place after any allow rules. *)

val allow :
  ?in_iface:string ->
  ?src_in:Ipv4_addr.Prefix.t ->
  ?dst_in:Ipv4_addr.Prefix.t ->
  ?protocol:Ipv4_packet.protocol ->
  unit ->
  rule
(** A general accept rule; unspecified fields match anything. *)

val deny :
  ?in_iface:string ->
  ?src_in:Ipv4_addr.Prefix.t ->
  ?dst_in:Ipv4_addr.Prefix.t ->
  ?protocol:Ipv4_packet.protocol ->
  reason:Trace.drop_reason ->
  unit ->
  rule

(** {1 Policies} *)

type policy

val accept_all : policy
val of_rules : rule list -> policy
(** Unmatched packets pass. *)

val of_rules_default_deny : reason:Trace.drop_reason -> rule list -> policy

val evaluate : policy -> in_iface:string -> Ipv4_packet.t -> verdict
val rules : policy -> rule list
val pp : Format.formatter -> policy -> unit
