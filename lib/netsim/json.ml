type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> "null" (* JSON has no non-finite *)
  | _ ->
      (* Shortest decimal that round-trips. *)
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s
      else
        let s = Printf.sprintf "%.16g" f in
        if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      let s = float_to_string f in
      Buffer.add_string buf s;
      (* Keep floats recognisable as floats on re-parse. *)
      if
        s <> "null"
        && not
             (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s)
      then Buffer.add_string buf ".0"
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ---------- parsing ---------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> parse_error "expected %c at offset %d, got %c" c st.pos c'
  | None -> parse_error "expected %c at offset %d, got end of input" c st.pos

let expect_literal st lit value =
  if
    st.pos + String.length lit <= String.length st.src
    && String.sub st.src st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    value
  end
  else parse_error "invalid literal at offset %d" st.pos

let utf8_of_code buf code =
  (* Encode a Unicode code point as UTF-8. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_hex4 st =
  let code = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> parse_error "bad \\u escape at offset %d" st.pos
        in
        code := (!code * 16) + d
    | None -> parse_error "truncated \\u escape");
    advance st
  done;
  !code

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> parse_error "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' -> utf8_of_code buf (parse_hex4 st)
            | c -> parse_error "bad escape \\%c" c);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "bad number %S at offset %d" s start
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> parse_error "bad number %S at offset %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> expect_literal st "null" Null
  | Some 't' -> expect_literal st "true" (Bool true)
  | Some 'f' -> expect_literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> parse_error "expected , or ] at offset %d" st.pos
        in
        items []
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((k, v) :: acc))
          | _ -> parse_error "expected , or } at offset %d" st.pos
        in
        fields []
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> parse_error "unexpected character %c at offset %d" c st.pos

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Parse_error e -> Error e

(* ---------- accessors ---------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let get_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List l -> Some l | _ -> None
