type verdict = Pass | Reject of Trace.drop_reason

type matcher = {
  in_iface : string option;
  src_in : Ipv4_addr.Prefix.t list;  (* src must be inside one of these *)
  src_outside : Ipv4_addr.Prefix.t list;  (* src must be outside all *)
  dst_in : Ipv4_addr.Prefix.t option;
  protocols : Ipv4_packet.protocol list;  (* empty = any *)
}

type rule = { matcher : matcher; verdict : verdict; label : string }

let any_matcher =
  { in_iface = None; src_in = []; src_outside = []; dst_in = None; protocols = [] }

let matches m ~in_iface (pkt : Ipv4_packet.t) =
  (match m.in_iface with None -> true | Some i -> i = in_iface)
  && (m.src_in = [] || List.exists (Ipv4_addr.Prefix.mem pkt.src) m.src_in)
  && (m.src_outside = []
     || not (List.exists (Ipv4_addr.Prefix.mem pkt.src) m.src_outside))
  && (match m.dst_in with
     | None -> true
     | Some p -> Ipv4_addr.Prefix.mem pkt.dst p)
  && (m.protocols = [] || List.mem pkt.protocol m.protocols)

let rule_to_string r = r.label

let ingress_source_filter ~external_iface ~inside =
  {
    matcher = { any_matcher with in_iface = Some external_iface; src_in = inside };
    verdict = Reject Trace.Ingress_filter;
    label = Printf.sprintf "ingress-source-filter on %s" external_iface;
  }

let no_transit ~internal_iface ~inside =
  {
    matcher =
      { any_matcher with in_iface = Some internal_iface; src_outside = inside };
    verdict = Reject Trace.Transit_filter;
    label = Printf.sprintf "no-transit on %s" internal_iface;
  }

let firewall_allow_tunnel_to ~external_iface ~home_agent =
  {
    matcher =
      {
        any_matcher with
        in_iface = Some external_iface;
        dst_in = Some (Ipv4_addr.Prefix.make home_agent 32);
        protocols = Ipv4_packet.[ P_ipip; P_gre; P_minimal ];
      };
    verdict = Pass;
    label = "firewall: allow tunnels to home agent";
  }

let firewall_block_external ~external_iface ~name =
  {
    matcher = { any_matcher with in_iface = Some external_iface };
    verdict = Reject (Trace.Firewall name);
    label = Printf.sprintf "firewall: block external (%s)" name;
  }

let general ?in_iface ?src_in ?dst_in ?protocol verdict label =
  {
    matcher =
      {
        in_iface;
        src_in = Option.to_list src_in;
        src_outside = [];
        dst_in;
        protocols = Option.to_list protocol;
      };
    verdict;
    label;
  }

let allow ?in_iface ?src_in ?dst_in ?protocol () =
  general ?in_iface ?src_in ?dst_in ?protocol Pass "allow"

let deny ?in_iface ?src_in ?dst_in ?protocol ~reason () =
  general ?in_iface ?src_in ?dst_in ?protocol (Reject reason) "deny"

type policy = { rules : rule list; default : verdict }

let accept_all = { rules = []; default = Pass }
let of_rules rules = { rules; default = Pass }
let of_rules_default_deny ~reason rules = { rules; default = Reject reason }

let evaluate policy ~in_iface pkt =
  match
    List.find_opt (fun r -> matches r.matcher ~in_iface pkt) policy.rules
  with
  | Some r -> r.verdict
  | None -> policy.default

let rules p = p.rules

let pp fmt p =
  List.iter (fun r -> Format.fprintf fmt "%s@." r.label) p.rules;
  Format.fprintf fmt "default: %s@."
    (match p.default with Pass -> "pass" | Reject _ -> "reject")
