(** 48-bit link-layer (Ethernet) addresses.

    The simulator assigns a fresh locally-administered MAC to every
    interface attached to an Ethernet segment; ARP ({!Net}) maps IPv4
    addresses onto these. *)

type t

val of_int : int -> t
(** @raise Invalid_argument if outside [0 .. 2^48-1]. *)

val to_int : t -> int
val of_string : string -> t
(** Parse ["aa:bb:cc:dd:ee:ff"].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val broadcast : t
val is_broadcast : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val fresh : unit -> t
(** A generator of distinct locally-administered unicast addresses. *)
