type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let clear t =
  t.heap <- [||];
  t.size <- 0

(* [a] comes before [b] when its priority is lower, or equal priority but
   scheduled earlier. *)
let before a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let add_seq t ~priority ~seq value =
  let entry = { priority; seq; value } in
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let add t ~priority value =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  add_seq t ~priority ~seq value

let peek t =
  if t.size = 0 then None
  else
    let e = t.heap.(0) in
    Some (e.priority, e.value)

let min_key t =
  if t.size = 0 then None
  else
    let e = t.heap.(0) in
    Some (e.priority, e.seq)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (e.priority, e.value)
  end
