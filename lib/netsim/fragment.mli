(** IP fragmentation and reassembly (RFC 791).

    The paper's §3.3 observes that 20 bytes of encapsulation overhead can
    push a full-MTU packet over the limit, doubling the packet count.
    Experiment E9 exercises exactly this path. *)

type error =
  | Dont_fragment  (** packet exceeds MTU but has DF set *)
  | Header_too_big  (** MTU below the header size; cannot make progress *)

val pp_error : Format.formatter -> error -> unit

val fragment : mtu:int -> Ipv4_packet.t -> (Ipv4_packet.t list, error) result
(** Split a packet into fragments that each fit in [mtu] bytes.  A packet
    already within the MTU is returned unchanged as a singleton.  Fragment
    payloads are [Raw] slices of the encoded original payload; offsets are
    in 8-byte units as on the wire. *)

val needs_fragmentation : mtu:int -> Ipv4_packet.t -> bool

(** Reassembly buffer, keyed by (src, dst, protocol, ident). *)
module Reassembly : sig
  type t

  val create : unit -> t

  val add : t -> now:float -> Ipv4_packet.t -> Ipv4_packet.t option
  (** Feed a packet in.  A non-fragment is returned immediately.  A fragment
      is buffered; when it completes a datagram, the reassembled packet
      (with its structured payload re-parsed) is returned. *)

  val expire : t -> older_than:float -> int
  (** Drop incomplete datagrams whose first fragment arrived before the
      given time.  Returns the number of datagrams dropped. *)

  val pending : t -> int
  (** Number of incomplete datagrams currently buffered. *)
end
