(** Deterministic, scriptable fault injection.

    A fault plan attaches to a {!Net.t} (via {!Net.set_fault_hook}) and
    scripts network pathologies at absolute simulation times: link flaps,
    partitions between node sets, latency spikes, packet duplication and
    reordering windows.  Higher layers add agent crash/restart through the
    generic {!at} hook.

    Everything is deterministic: window transitions are engine events, and
    the probabilistic effects (duplication, reordering jitter) draw from a
    seeded generator — two runs of the same plan with the same seed replay
    identically.  Drops caused by the plan appear in the {!Trace} with the
    dedicated [Link_flap] and [Partitioned] reasons, so they are visible in
    [--trace-json] exports and Netobs counters. *)

type t

val attach : ?seed:int -> Net.t -> t
(** Attach a fresh (empty) fault plan to the network, installing its fault
    hook.  Replaces any previously attached plan.  Default seed
    [0xfa17]. *)

val detach : t -> unit
(** Remove the plan's hook; scheduled window transitions still fire but no
    longer affect delivery. *)

val seed : t -> int

(** {1 Scripted faults}

    All times are absolute simulation times.  A time at or before "now"
    takes effect immediately. *)

val link_down : t -> at:float -> link:string -> unit
(** Take a link (segment name or point-to-point link name) down: every
    frame copy on it is dropped with reason [Link_flap]. *)

val link_up : t -> at:float -> link:string -> unit

val flap : t -> link:string -> down:float -> up:float -> unit
(** [flap t ~link ~down ~up] = [link_down] at [down] plus [link_up] at
    [up].  @raise Invalid_argument if [up <= down]. *)

val partition :
  t -> from_:float -> until:float -> a:string list -> b:string list -> unit
(** During the window, frames transmitted by a node named in [a] toward a
    node named in [b] (or vice versa) are dropped with reason
    [Partitioned].  @raise Invalid_argument on an empty window. *)

val latency_spike :
  t -> link:string -> from_:float -> until:float -> extra:float -> unit
(** Add [extra] seconds to every delivery on the link during the window.
    Overlapping spikes on the same link accumulate.
    @raise Invalid_argument on an empty window or negative [extra]. *)

val duplicate_window : t -> from_:float -> until:float -> rate:float -> unit
(** During the window each delivered frame copy is duplicated with
    probability [rate] (seeded).  The most recent window wins if windows
    overlap.  @raise Invalid_argument unless [0 <= rate < 1]. *)

val reorder_window :
  t -> from_:float -> until:float -> rate:float -> max_extra:float -> unit
(** During the window each frame copy is delayed, with probability [rate],
    by a seeded extra delay uniform in [0, max_extra) — enough to overtake
    later frames and reorder the stream.
    @raise Invalid_argument unless [0 <= rate < 1] and [max_extra > 0]. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Add an arbitrary scripted action to the plan (agent crash/restart,
    route changes...).  Runs immediately when [time] is not in the
    future. *)

(** {1 Statistics} *)

type stats = {
  flap_drops : int;  (** frame copies dropped on scripted-down links *)
  partition_drops : int;  (** frame copies dropped crossing a partition *)
  duplicated : int;  (** extra copies injected by duplication windows *)
  delayed : int;  (** copies given reordering jitter *)
}

val stats : t -> stats
