(** Deterministic, scriptable fault injection.

    A fault plan attaches to a {!Net.t} (via {!Net.set_fault_hook}) and
    scripts network pathologies at absolute simulation times: link flaps,
    partitions between node sets, latency spikes, packet duplication and
    reordering windows.  Higher layers add agent crash/restart through the
    generic {!at} hook.

    Everything is deterministic: window transitions are engine events, and
    the probabilistic effects (duplication, reordering jitter) draw from a
    seeded generator — two runs of the same plan with the same seed replay
    identically.  Drops caused by the plan appear in the {!Trace} with the
    dedicated [Link_flap] and [Partitioned] reasons, so they are visible in
    [--trace-json] exports and Netobs counters. *)

type t

val attach : ?seed:int -> Net.t -> t
(** Attach a fresh (empty) fault plan to the network, installing its fault
    hook.  Replaces any previously attached plan.  Default seed
    [0xfa17]. *)

val detach : t -> unit
(** Remove the plan's hook; scheduled window transitions still fire but no
    longer affect delivery. *)

val seed : t -> int

(** {1 Scripted faults}

    All times are absolute simulation times.  A time at or before "now"
    takes effect immediately. *)

val link_down : t -> at:float -> link:string -> unit
(** Take a link (segment name or point-to-point link name) down: every
    frame copy on it is dropped with reason [Link_flap]. *)

val link_up : t -> at:float -> link:string -> unit

val flap : t -> link:string -> down:float -> up:float -> unit
(** [flap t ~link ~down ~up] = [link_down] at [down] plus [link_up] at
    [up].  @raise Invalid_argument if [up <= down]. *)

val partition :
  t -> from_:float -> until:float -> a:string list -> b:string list -> unit
(** During the window, frames transmitted by a node named in [a] toward a
    node named in [b] (or vice versa) are dropped with reason
    [Partitioned].  @raise Invalid_argument on an empty window. *)

val latency_spike :
  t -> link:string -> from_:float -> until:float -> extra:float -> unit
(** Add [extra] seconds to every delivery on the link during the window.
    Overlapping spikes on the same link accumulate.
    @raise Invalid_argument on an empty window or negative [extra]. *)

val duplicate_window : t -> from_:float -> until:float -> rate:float -> unit
(** During the window each delivered frame copy is duplicated with
    probability [rate] (seeded).  The most recent window wins if windows
    overlap.  @raise Invalid_argument unless [0 <= rate < 1]. *)

val reorder_window :
  t -> from_:float -> until:float -> rate:float -> max_extra:float -> unit
(** During the window each frame copy is delayed, with probability [rate],
    by a seeded extra delay uniform in [0, max_extra) — enough to overtake
    later frames and reorder the stream.
    @raise Invalid_argument unless [0 <= rate < 1] and [max_extra > 0]. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Add an arbitrary scripted action to the plan (agent crash/restart,
    route changes...).  Runs immediately when [time] is not in the
    future. *)

(** {1 Declarative plans}

    A fault plan as data: what the {!Chaos} generator produces, the
    delta-debugging shrinker edits, and [--fault-json] repro files store.
    {!apply} funnels every event through the imperative API above, so a
    declarative plan and the equivalent sequence of calls behave
    identically — and replaying a plan with the same seed reproduces a run
    exactly.

    [Action] events are opaque to this module: an (at, kind, arg) triple
    the applying layer interprets (agent crash/restart, handover
    triggers...), so the simulator core stays ignorant of Mobile IP. *)

type event =
  | Flap of { link : string; down : float; up : float }
  | Partition of { from_ : float; until : float; a : string list; b : string list }
  | Latency_spike of { link : string; from_ : float; until : float; extra : float }
  | Duplicate of { from_ : float; until : float; rate : float }
  | Reorder of { from_ : float; until : float; rate : float; max_extra : float }
  | Action of { at_ : float; kind : string; arg : string }

type plan = { seed : int; events : event list }

val event_start : event -> float
val event_end : event -> float

val plan_end : plan -> float
(** Latest end time over the plan's events; [0] for an empty plan.  After
    this instant no scripted fault is active (scheduled restarts
    included), which is where the eventual-recovery clock starts. *)

val apply :
  ?action:(at:float -> kind:string -> arg:string -> unit) ->
  Net.t ->
  plan ->
  t
(** Attach the plan to the network: seed the generator with [plan.seed]
    and script every event.  [Action] events call [?action] (default:
    ignore) at their scheduled time.
    @raise Invalid_argument on an ill-formed event (empty window, bad
    rate...), like the imperative API. *)

val json_of_event : event -> Json.t
val event_of_json : Json.t -> (event, string) result

val plan_to_json : plan -> Json.t
(** Round-trips: [plan_of_json (plan_to_json p) = Ok p]. *)

val plan_of_json : Json.t -> (plan, string) result
val plan_to_string : plan -> string
val plan_of_string : string -> (plan, string) result
val pp_event : Format.formatter -> event -> unit

(** {1 Statistics} *)

type stats = {
  flap_drops : int;  (** frame copies dropped on scripted-down links *)
  partition_drops : int;  (** frame copies dropped crossing a partition *)
  duplicated : int;  (** extra copies injected by duplication windows *)
  delayed : int;  (** copies given reordering jitter *)
}

val stats : t -> stats
