(** Randomized fault-plan generation and failure shrinking.

    {!generate} turns a seed and a declarative {!budget} into a
    {!Fault.plan}: which links may flap or lag, which partition cuts may
    open, which opaque actions (agent crashes, handover triggers — see
    {!Fault.Action}) may fire, how many events, and inside what time
    horizon.  Generation is a pure function of [(seed, budget)] — no
    wall-clock, no global state — so every plan regenerates bit-for-bit
    from its seed, a soak sweep is replayable, and a shrunken repro is
    stable.

    {!shrink} is delta debugging (ddmin) over a failing plan's event
    list: it removes ever-finer chunks of events, keeping any reduction
    the caller's replay still reports as failing, and returns a plan from
    which no chunk at any tried granularity can be removed. *)

type budget = {
  events : int;  (** how many events to generate (>= 0) *)
  horizon : float;  (** all scripted activity ends by this time *)
  links : string list;  (** links eligible for flaps and latency spikes *)
  cuts : (string list * string list) list;
      (** candidate partitions (node-name sets) *)
  actions : (string * string list) list;
      (** opaque action kinds and their candidate arguments *)
  max_window : float;  (** longest single fault window, seconds *)
  max_extra_latency : float;  (** largest latency-spike addition, seconds *)
}

val default_budget : budget
(** 6 events in a 30 s horizon, windows up to 5 s, spikes up to 0.5 s; no
    links, cuts or actions (callers fill in their world's names). *)

val generate : ?seed:int -> budget -> Fault.plan
(** Deterministic: the same seed and budget always produce the identical
    plan, and the plan respects its budget (event count, horizon, only
    named links/cuts/actions).  Event kinds whose candidate lists are
    empty are never generated.
    @raise Invalid_argument if [horizon <= 0] or [max_window <= 0]. *)

val shrink :
  still_failing:(Fault.plan -> bool) -> Fault.plan -> Fault.plan * int
(** [shrink ~still_failing plan] assumes [plan] itself fails (the caller
    observed the violation that prompted the shrink) and returns the
    reduced plan plus the number of [still_failing] replays spent.  The
    result keeps the original seed, so replaying it reproduces the
    violation. *)
