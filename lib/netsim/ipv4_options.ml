let lsr_type = 131
let nop = 1

let put_addr buf off a =
  let o1, o2, o3, o4 = Ipv4_addr.to_octets a in
  Bytes.set buf off (Char.chr o1);
  Bytes.set buf (off + 1) (Char.chr o2);
  Bytes.set buf (off + 2) (Char.chr o3);
  Bytes.set buf (off + 3) (Char.chr o4)

let get_addr buf off =
  Ipv4_addr.of_octets
    (Char.code (Bytes.get buf off))
    (Char.code (Bytes.get buf (off + 1)))
    (Char.code (Bytes.get buf (off + 2)))
    (Char.code (Bytes.get buf (off + 3)))

let build_lsr ~via =
  let n = List.length via in
  if n = 0 || n > 9 then
    invalid_arg "Ipv4_options.build_lsr: route must have 1..9 hops";
  let opt_len = 3 + (4 * n) in
  let padded = (opt_len + 3) / 4 * 4 in
  let buf = Bytes.make padded (Char.chr nop) in
  Bytes.set buf 0 (Char.chr lsr_type);
  Bytes.set buf 1 (Char.chr opt_len);
  Bytes.set buf 2 (Char.chr 4) (* pointer: first address, 1-based *);
  List.iteri (fun i a -> put_addr buf (3 + (4 * i)) a) via;
  buf

(* Scan the options buffer for an LSR option; returns its byte offset. *)
let find_lsr buf =
  let n = Bytes.length buf in
  let rec scan off =
    if off >= n then None
    else
      let ty = Char.code (Bytes.get buf off) in
      if ty = nop then scan (off + 1)
      else if ty = 0 then None (* end of options *)
      else if off + 1 >= n then None
      else
        let len = Char.code (Bytes.get buf (off + 1)) in
        if len < 3 || off + len > n then None
        else if ty = lsr_type then Some (off, len)
        else scan (off + len)
  in
  scan 0

let parse_lsr buf =
  match find_lsr buf with
  | None -> None
  | Some (off, len) ->
      let pointer = Char.code (Bytes.get buf (off + 2)) in
      let count = (len - 3) / 4 in
      let addresses =
        List.init count (fun i -> get_addr buf (off + 3 + (4 * i)))
      in
      (* Pointer is a 1-based byte offset within the option; address k
         (0-based) lives at offset 4+4k. *)
      let index = (pointer - 4) / 4 in
      Some (index, addresses)

let lsr_next_hop buf =
  match parse_lsr buf with
  | Some (index, addresses) when index < List.length addresses ->
      Some (List.nth addresses index)
  | Some _ | None -> None

let advance_lsr buf ~here =
  match find_lsr buf with
  | None -> None
  | Some (off, len) ->
      let pointer = Char.code (Bytes.get buf (off + 2)) in
      if pointer + 3 > len then None (* exhausted *)
      else begin
        let buf' = Bytes.copy buf in
        (* Record the address of the node doing the rewriting where the
           just-consumed hop was, and move the pointer on. *)
        put_addr buf' (off + pointer - 1) here;
        Bytes.set buf' (off + 2) (Char.chr (pointer + 4));
        Some buf'
      end

let has_options buf =
  Bytes.exists (fun c -> Char.code c <> nop && Char.code c <> 0) buf

(* RFC 791 copy bit: top bit of the option type byte.  Options with it set
   (LSR among them) must be replicated into every fragment; the rest
   travel only in the first fragment. *)
let copied_flag = 0x80

let copied_options buf =
  let n = Bytes.length buf in
  let out = Buffer.create n in
  let rec scan off =
    if off < n then
      let ty = Char.code (Bytes.get buf off) in
      if ty = nop then scan (off + 1)
      else if ty = 0 then ()
      else if off + 1 >= n then ()
      else
        let len = Char.code (Bytes.get buf (off + 1)) in
        if len < 2 || off + len > n then ()
        else begin
          if ty land copied_flag <> 0 then
            Buffer.add_subbytes out buf off len;
          scan (off + len)
        end
  in
  scan 0;
  let kept = Buffer.length out in
  let padded = (kept + 3) / 4 * 4 in
  Buffer.add_string out (String.make (padded - kept) (Char.chr nop));
  Buffer.to_bytes out
