(** Per-shard byte-buffer pool.

    Recycles payload buffers by exact size so capacity workloads reuse a
    shard's buffers instead of allocating a fresh payload per datagram.
    A pool belongs to one shard ({!Net.node_pool}) and is only touched
    by that shard's domain, so it needs no locking; for cross-shard
    traffic, release into the {e receiving} node's pool — the last
    domain to touch the buffer. *)

type t

val create : ?max_per_class:int -> unit -> t
(** [max_per_class] (default 256) bounds how many buffers of one size are
    retained; excess releases are dropped to the GC. *)

val alloc : t -> int -> Bytes.t
(** A buffer of exactly the requested size, recycled when one is pooled.
    Contents are {e not} zeroed on reuse.
    @raise Invalid_argument on negative size. *)

val release : t -> Bytes.t -> unit
(** Return a buffer to the pool for reuse. *)

val hits : t -> int
val misses : t -> int
val live : t -> int
(** Buffers allocated and not yet released. *)

val pooled : t -> int
(** Buffers currently sitting in the pool. *)
