(** Hot-path profiler: per-subsystem wall-clock accounting behind a
    zero-cost-when-off flag.

    The simulator's hot paths carry fixed [enter]/[leave] probes keyed by
    {!category}.  While profiling is off ({!set_enabled}[ false], the
    default) each probe is one global load and branch — cheap enough to
    leave compiled into the per-hop fast path.  While on, every span is
    timed with [Sys.time] and charged to its category as both {e total}
    time (nested categories included) and {e self} time (nested spans
    subtracted), so the rendered table shows where simulator time actually
    goes — the measurement the scale-out work steers by.

    State is process-global, matching the probes: one accounting domain
    per process, reset explicitly between measurements. *)

type category =
  | Dispatch  (** engine event dispatch (everything under [Engine.step]) *)
  | Routing  (** longest-prefix-match lookups *)
  | Checksum  (** full one's-complement (re)computations *)
  | Encap  (** tunnel encapsulation *)
  | Decap  (** tunnel decapsulation *)
  | Agent  (** mobility-agent packet hooks (intercept / route override) *)
  | Trace_emit  (** trace-record construction, logging and fan-out *)

val all : category list
val label : category -> string
(** Stable human/JSON name, e.g. ["routing-lookup"]. *)

val set_enabled : bool -> unit
(** Turn accounting on or off (default off).  Turning it off also clears
    any spans left open by a probe interrupted mid-flight. *)

val on : unit -> bool

val enabled : bool ref
(** The flag behind {!on}/{!set_enabled}, exposed read-only by
    convention: probe sites hot enough that even a no-op call is
    measurable guard their [enter]/[leave] pair behind [!enabled]
    themselves.  Mutate it only through {!set_enabled}. *)

val enter : category -> unit
val leave : category -> unit
(** Bracket a span.  Calls must nest; an unmatched [leave] is ignored.
    No-ops (one load and branch) while profiling is off. *)

val span : category -> (unit -> 'a) -> 'a
(** [span cat f] brackets [f ()] with {!enter}/{!leave}, releasing the
    span even if [f] raises.  Allocates a closure — for warm paths; the
    per-packet probes use inline [enter]/[leave]. *)

type entry = { cat : category; calls : int; total_s : float; self_s : float }

val snapshot : unit -> entry list
(** One entry per category observed since the last {!reset}, in
    declaration order.  [total_s] counts outermost spans only (recursion
    is not double-counted); [self_s] excludes time spent in nested
    categories. *)

val reset : unit -> unit
