(** Per-node IP routing tables with longest-prefix-match lookup.

    A route maps a destination prefix to an outgoing interface name and an
    optional next-hop gateway (absent for directly-connected networks).
    Lookup prefers the longest matching prefix, then the lowest metric,
    then the most recently added route.

    Internally the table is a binary trie on address bits with a one-entry
    destination cache, so [lookup] is O(prefix length) — O(1) for repeated
    destinations — rather than a scan of the whole table.  Any mutation
    invalidates the cache. *)

type route = {
  prefix : Ipv4_addr.Prefix.t;
  gateway : Ipv4_addr.t option;  (** [None] = directly connected *)
  iface : string;
  metric : int;
}

val pp_route : Format.formatter -> route -> unit

type table

val create : unit -> table

val add : table -> ?metric:int -> ?gateway:Ipv4_addr.t ->
  prefix:Ipv4_addr.Prefix.t -> iface:string -> unit -> unit
(** Add a route (default metric 0). *)

val add_default : table -> gateway:Ipv4_addr.t -> iface:string -> unit
(** Add a [0.0.0.0/0] route. *)

val remove :
  table ->
  ?iface:string ->
  ?metric:int ->
  prefix:Ipv4_addr.Prefix.t ->
  unit ->
  unit
(** [remove t ?iface ?metric ~prefix ()] removes routes for exactly this
    prefix.  With no filters, removes every such route (the historical
    behaviour); [?iface] and/or [?metric] restrict removal to routes that
    also match those fields, for callers that mean one specific route. *)

val remove_iface : table -> iface:string -> unit
(** Remove every route through the named interface (used when a mobile
    host detaches from a network). *)

val lookup : table -> Ipv4_addr.t -> route option
(** Longest-prefix-match lookup. *)

val routes : table -> route list
(** Current routes, most specific first. *)

val clear : table -> unit
val pp : Format.formatter -> table -> unit
