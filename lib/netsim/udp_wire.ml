type t = { src_port : int; dst_port : int; payload : Bytes.t }

let header_length = 8

let check_port p =
  if p < 0 || p > 0xffff then
    invalid_arg (Printf.sprintf "Udp_wire: port %d out of range" p)

let make ~src_port ~dst_port payload =
  check_port src_port;
  check_port dst_port;
  { src_port; dst_port; payload }

let byte_length t = header_length + Bytes.length t.payload

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get_u16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let encode ~src ~dst t =
  let len = byte_length t in
  let buf = Bytes.create len in
  set_u16 buf 0 t.src_port;
  set_u16 buf 2 t.dst_port;
  set_u16 buf 4 len;
  set_u16 buf 6 0;
  Bytes.blit t.payload 0 buf 8 (Bytes.length t.payload);
  let pseudo =
    Checksum.pseudo_header_sum ~src ~dst ~protocol:17 ~length:len
  in
  let sum = Checksum.ones_complement_sum ~initial:pseudo buf 0 len in
  let csum = Checksum.finish sum in
  (* RFC 768: a computed checksum of zero is transmitted as all ones. *)
  set_u16 buf 6 (if csum = 0 then 0xffff else csum);
  buf

let decode ~src ~dst buf =
  let n = Bytes.length buf in
  if n < header_length then Error "udp: truncated header"
  else
    let len = get_u16 buf 4 in
    if len <> n then Error (Printf.sprintf "udp: length field %d <> %d" len n)
    else
      let csum_field = get_u16 buf 6 in
      let checksum_ok =
        (* A zero checksum field means the sender did not compute one. *)
        csum_field = 0
        ||
        let pseudo =
          Checksum.pseudo_header_sum ~src ~dst ~protocol:17 ~length:len
        in
        let sum = Checksum.ones_complement_sum ~initial:pseudo buf 0 len in
        sum land 0xffff = 0xffff
      in
      if not checksum_ok then Error "udp: bad checksum"
      else
        Ok
          {
            src_port = get_u16 buf 0;
            dst_port = get_u16 buf 2;
            payload = Bytes.sub buf 8 (n - 8);
          }

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  && Bytes.equal a.payload b.payload

let pp fmt t =
  Format.fprintf fmt "UDP %d->%d (%d bytes)" t.src_port t.dst_port
    (Bytes.length t.payload)
