(** Discrete-event simulation engine.

    Time is a float in seconds.  Events are closures scheduled at absolute or
    relative times; [run] drains the queue in timestamp order (FIFO among
    simultaneous events, so the simulation is deterministic).

    Every simulated network ({!Net}) owns one engine; link transmission,
    protocol timers (TCP retransmission, registration lifetimes, binding
    cache TTLs) are all engine events.  A sharded network ({!Net.set_shards})
    owns one engine per shard and coordinates them through the sharding
    hooks at the bottom of this interface. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds. *)

val clock_cell : t -> floatarray
(** The one-element cell backing {!now}, for consumers that read the
    clock on every packet event (the trace fast path): an unboxed
    [Float.Array.unsafe_get _ 0] away, with no accessor call.  Treat it
    as read-only — the engine owns the store. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val after : t -> float -> (unit -> unit) -> unit
(** [after t delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative. *)

val cancellable_after : t -> float -> (unit -> unit) -> unit -> unit
(** [cancellable_after t delay f] schedules [f] and returns a cancel
    function.  Cancelling after the event fired is a no-op.  The timer
    belongs to this engine's clock: in a sharded net it fires (or is
    cancelled) on the owning shard's timeline only, never on another
    shard's clock. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue.  Stops when empty, when simulated time would
    exceed [until], or after [max_events] events (default 10 million, a
    runaway guard).  A run stopped by the guard is no longer silent: it
    logs a warning and increments [truncated] in {!stats}. *)

(** {1 Statistics}

    The engine keeps cheap running statistics so the observability layer
    can expose them as gauges without instrumenting call sites. *)

type stats = {
  executed : int;  (** events executed since [create] *)
  pending : int;  (** current queue depth *)
  max_pending : int;  (** high-water mark of the queue depth *)
  truncated : int;  (** runs stopped by the [max_events] guard *)
  sim_time : float;  (** current simulated time, seconds *)
  wall_time : float;
      (** monotonic wall-clock seconds spent inside [run] — real elapsed
          time, which a parallel sharded run makes smaller than the CPU
          work done *)
  cpu_time : float;
      (** host CPU seconds spent inside [run] ([Sys.time]-based, process
          wide) — the overhead ladders (E20) ratio against this, and it
          keeps growing with total work even when [wall_time] shrinks
          under parallel execution *)
}

val stats : t -> stats

val set_observer : t -> (stats -> unit) option -> unit
(** Install (or clear) a hook called with fresh statistics at the end of
    every [run] — how a metrics registry tracks an engine it does not
    own. *)

val step : t -> bool
(** Run a single event.  Returns false when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)

val clear : t -> unit
(** Drop all pending events (does not reset the clock). *)

(** {1 Sharding support}

    Hooks {!Net.set_shards} uses to coordinate several engines.  Ordinary
    simulation code never needs these. *)

val next_key : t -> (float * int) option
(** The head event's full sort key [(time, seq)] — what the sequential
    sharded merge loop compares across shard queues to pick the globally
    next event. *)

val use_clock_cell : t -> floatarray -> unit
(** Repoint this engine's clock at another cell.  Sequential sharded mode
    points every shard engine at shard 0's cell so there is exactly one
    global clock; parallel mode leaves each engine its own. *)

val use_seq_counter : t -> int ref -> unit
(** Repoint the same-timestamp tie-break counter.  Sharing one counter
    across engines (sequential sharded mode) makes the per-queue
    [(time, seq)] keys a single global total order, so the merge loop
    reproduces the unsharded event order bit-for-bit. *)

val seq_counter : t -> int ref

val set_now : t -> float -> unit
(** Advance the clock without running events (a barrier coordinator
    clamping idle shards to the window edge, or to [until]).
    @raise Invalid_argument if the time moves backward. *)

val run_window : ?until:float -> ?max_events:int -> horizon:float -> t -> int
(** Run events strictly before [horizon] (and not beyond [until], when
    given); returns the number executed.  This is one shard's share of a
    conservative-lookahead window: the coordinator computes [horizon] as
    the global minimum next-event time plus the inter-shard lookahead, so
    everything below it is safe to run without seeing another shard's
    frames.  Does not touch wall/CPU accounting or the observer — the
    coordinator owns those. *)

val add_run_time : t -> wall:float -> cpu:float -> unit
(** Accrue run-time accounting from an external coordinator. *)

val mark_truncated : ?max_events:int -> t -> unit
(** Record (and log) a run stopped by the runaway guard. *)

val notify_observer : t -> unit
(** Fire the stats observer, as [run] does at its end. *)
