(** Discrete-event simulation engine.

    Time is a float in seconds.  Events are closures scheduled at absolute or
    relative times; [run] drains the queue in timestamp order (FIFO among
    simultaneous events, so the simulation is deterministic).

    Every simulated network ({!Net}) owns one engine; link transmission,
    protocol timers (TCP retransmission, registration lifetimes, binding
    cache TTLs) are all engine events. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds. *)

val clock_cell : t -> floatarray
(** The one-element cell backing {!now}, for consumers that read the
    clock on every packet event (the trace fast path): an unboxed
    [Float.Array.unsafe_get _ 0] away, with no accessor call.  Treat it
    as read-only — the engine owns the store. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val after : t -> float -> (unit -> unit) -> unit
(** [after t delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative. *)

val cancellable_after : t -> float -> (unit -> unit) -> unit -> unit
(** [cancellable_after t delay f] schedules [f] and returns a cancel
    function.  Cancelling after the event fired is a no-op. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue.  Stops when empty, when simulated time would
    exceed [until], or after [max_events] events (default 10 million, a
    runaway guard).  A run stopped by the guard is no longer silent: it
    logs a warning and increments [truncated] in {!stats}. *)

(** {1 Statistics}

    The engine keeps cheap running statistics so the observability layer
    can expose them as gauges without instrumenting call sites. *)

type stats = {
  executed : int;  (** events executed since [create] *)
  pending : int;  (** current queue depth *)
  max_pending : int;  (** high-water mark of the queue depth *)
  truncated : int;  (** runs stopped by the [max_events] guard *)
  sim_time : float;  (** current simulated time, seconds *)
  wall_time : float;  (** host CPU seconds spent inside [run] *)
}

val stats : t -> stats

val set_observer : t -> (stats -> unit) option -> unit
(** Install (or clear) a hook called with fresh statistics at the end of
    every [run] — how a metrics registry tracks an engine it does not
    own. *)

val step : t -> bool
(** Run a single event.  Returns false when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)

val clear : t -> unit
(** Drop all pending events (does not reset the clock). *)
