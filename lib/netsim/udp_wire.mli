(** UDP datagram wire format (RFC 768).

    Encoding and decoding include the checksum over the IPv4 pseudo-header,
    which is why both operations take the enclosing packet's source and
    destination addresses. *)

type t = { src_port : int; dst_port : int; payload : Bytes.t }

val header_length : int
(** 8 bytes. *)

val make : src_port:int -> dst_port:int -> Bytes.t -> t
(** @raise Invalid_argument if a port is outside [0..65535]. *)

val byte_length : t -> int
(** Encoded length: header plus payload. *)

val encode : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> t -> Bytes.t

val decode :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> Bytes.t -> (t, string) result
(** Parse and verify length and checksum. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
