type t = int32

let of_int32 x = x
let to_int32 x = x

let of_octets a b c d =
  let check n =
    if n < 0 || n > 255 then
      invalid_arg (Printf.sprintf "Ipv4_addr.of_octets: octet %d out of range" n)
  in
  check a;
  check b;
  check c;
  check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let to_octets x =
  let u = Int32.to_int (Int32.shift_right_logical x 24) land 0xff in
  let b = Int32.to_int (Int32.shift_right_logical x 16) land 0xff in
  let c = Int32.to_int (Int32.shift_right_logical x 8) land 0xff in
  let d = Int32.to_int x land 0xff in
  (u, b, c, d)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some n when n >= 0 && n <= 255 && String.length x <= 3 -> Some n
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4_addr.of_string: %S" s)

let to_string x =
  let a, b, c, d = to_octets x in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let compare (a : t) (b : t) =
  (* Unsigned 32-bit comparison: flip the sign bit. *)
  Int32.unsigned_compare a b

let equal (a : t) (b : t) = Int32.equal a b
let hash (x : t) = Hashtbl.hash x
let pp fmt x = Format.pp_print_string fmt (to_string x)
let any = 0l
let broadcast = 0xffffffffl
let localhost = of_octets 127 0 0 1

let is_multicast x =
  Int32.equal (Int32.logand x 0xf0000000l) 0xe0000000l

let is_loopback x = Int32.equal (Int32.logand x 0xff000000l) 0x7f000000l
let succ x = Int32.add x 1l

module Prefix = struct
  type addr = t

  type t = { network : addr; bits : int }

  let mask_of_bits bits =
    if bits = 0 then 0l
    else Int32.shift_left (-1l) (32 - bits)

  let make network bits =
    if bits < 0 || bits > 32 then
      invalid_arg (Printf.sprintf "Prefix.make: bad mask length %d" bits);
    { network = Int32.logand network (mask_of_bits bits); bits }

  let of_string_opt s =
    match String.index_opt s '/' with
    | None -> None
    | Some i -> (
        let addr = String.sub s 0 i in
        let len = String.sub s (i + 1) (String.length s - i - 1) in
        match (of_string_opt addr, int_of_string_opt len) with
        | Some a, Some b when b >= 0 && b <= 32 -> Some (make a b)
        | _ -> None)

  let of_string s =
    match of_string_opt s with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

  let to_string p = Printf.sprintf "%s/%d" (to_string p.network) p.bits
  let network p = p.network
  let bits p = p.bits
  let netmask p = mask_of_bits p.bits

  let mem a p =
    Int32.equal (Int32.logand a (mask_of_bits p.bits)) p.network

  let subset sub super = sub.bits >= super.bits && mem sub.network super

  let host p n =
    let host_bits = 32 - p.bits in
    let capacity = if host_bits >= 31 then max_int else (1 lsl host_bits) - 1 in
    if n < 0 || n > capacity then
      invalid_arg (Printf.sprintf "Prefix.host: %d outside %s" n (to_string p));
    Int32.logor p.network (Int32.of_int n)

  let broadcast_addr p =
    Int32.logor p.network (Int32.lognot (mask_of_bits p.bits))

  let compare a b =
    match Int32.unsigned_compare a.network b.network with
    | 0 -> Int.compare a.bits b.bits
    | c -> c

  let equal a b = compare a b = 0
  let pp fmt p = Format.pp_print_string fmt (to_string p)
  let global = { network = 0l; bits = 0 }
end
