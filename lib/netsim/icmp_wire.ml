type unreach_code =
  | Net_unreachable
  | Host_unreachable
  | Protocol_unreachable
  | Port_unreachable
  | Fragmentation_needed
  | Admin_prohibited

type t =
  | Echo_request of { ident : int; seq : int; payload : Bytes.t }
  | Echo_reply of { ident : int; seq : int; payload : Bytes.t }
  | Dest_unreachable of { code : unreach_code; context : Bytes.t }
  | Time_exceeded of { context : Bytes.t }
  | Care_of_advert of { home : Ipv4_addr.t; care_of : Ipv4_addr.t; lifetime : int }

let care_of_advert_type = 40

let unreach_code_to_int = function
  | Net_unreachable -> 0
  | Host_unreachable -> 1
  | Protocol_unreachable -> 2
  | Port_unreachable -> 3
  | Fragmentation_needed -> 4
  | Admin_prohibited -> 13

let unreach_code_of_int = function
  | 0 -> Ok Net_unreachable
  | 1 -> Ok Host_unreachable
  | 2 -> Ok Protocol_unreachable
  | 3 -> Ok Port_unreachable
  | 4 -> Ok Fragmentation_needed
  | 13 -> Ok Admin_prohibited
  | c -> Error (Printf.sprintf "icmp: unknown unreachable code %d" c)

let byte_length = function
  | Echo_request { payload; _ } | Echo_reply { payload; _ } ->
      8 + Bytes.length payload
  | Dest_unreachable { context; _ } | Time_exceeded { context } ->
      8 + Bytes.length context
  | Care_of_advert _ -> 8 + 8

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get_u16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let set_addr buf off a =
  let x = Ipv4_addr.to_int32 a in
  set_u16 buf off (Int32.to_int (Int32.shift_right_logical x 16) land 0xffff);
  set_u16 buf (off + 2) (Int32.to_int x land 0xffff)

let get_addr buf off =
  let hi = get_u16 buf off and lo = get_u16 buf (off + 2) in
  Ipv4_addr.of_int32
    (Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo))

let encode t =
  let len = byte_length t in
  let buf = Bytes.make len '\000' in
  let set_type_code ty code =
    Bytes.set buf 0 (Char.chr ty);
    Bytes.set buf 1 (Char.chr code)
  in
  (match t with
  | Echo_request { ident; seq; payload } ->
      set_type_code 8 0;
      set_u16 buf 4 ident;
      set_u16 buf 6 seq;
      Bytes.blit payload 0 buf 8 (Bytes.length payload)
  | Echo_reply { ident; seq; payload } ->
      set_type_code 0 0;
      set_u16 buf 4 ident;
      set_u16 buf 6 seq;
      Bytes.blit payload 0 buf 8 (Bytes.length payload)
  | Dest_unreachable { code; context } ->
      set_type_code 3 (unreach_code_to_int code);
      Bytes.blit context 0 buf 8 (Bytes.length context)
  | Time_exceeded { context } ->
      set_type_code 11 0;
      Bytes.blit context 0 buf 8 (Bytes.length context)
  | Care_of_advert { home; care_of; lifetime } ->
      set_type_code care_of_advert_type 0;
      set_u16 buf 6 (lifetime land 0xffff);
      set_addr buf 8 home;
      set_addr buf 12 care_of);
  let csum = Checksum.compute buf in
  set_u16 buf 2 csum;
  buf

let decode buf =
  let n = Bytes.length buf in
  if n < 8 then Error "icmp: truncated"
  else if not (Checksum.valid buf) then Error "icmp: bad checksum"
  else
    let ty = Char.code (Bytes.get buf 0) in
    let code = Char.code (Bytes.get buf 1) in
    let rest off = Bytes.sub buf off (n - off) in
    match ty with
    | 8 ->
        Ok (Echo_request { ident = get_u16 buf 4; seq = get_u16 buf 6; payload = rest 8 })
    | 0 ->
        Ok (Echo_reply { ident = get_u16 buf 4; seq = get_u16 buf 6; payload = rest 8 })
    | 3 ->
        Result.map
          (fun code -> Dest_unreachable { code; context = rest 8 })
          (unreach_code_of_int code)
    | 11 -> Ok (Time_exceeded { context = rest 8 })
    | t when t = care_of_advert_type ->
        if n < 16 then Error "icmp: truncated care-of advert"
        else
          Ok
            (Care_of_advert
               {
                 home = get_addr buf 8;
                 care_of = get_addr buf 12;
                 lifetime = get_u16 buf 6;
               })
    | t -> Error (Printf.sprintf "icmp: unknown type %d" t)

let quote_context wire =
  let n = Bytes.length wire in
  if n < 1 then Bytes.create 0
  else
    let ihl = (Char.code (Bytes.get wire 0) land 0x0f) * 4 in
    Bytes.sub wire 0 (min n (ihl + 8))

let context_original ctx =
  if Bytes.length ctx < 20 then None
  else Some (get_addr ctx 12, get_addr ctx 16)

let equal a b =
  match (a, b) with
  | Echo_request x, Echo_request y ->
      x.ident = y.ident && x.seq = y.seq && Bytes.equal x.payload y.payload
  | Echo_reply x, Echo_reply y ->
      x.ident = y.ident && x.seq = y.seq && Bytes.equal x.payload y.payload
  | Dest_unreachable x, Dest_unreachable y ->
      x.code = y.code && Bytes.equal x.context y.context
  | Time_exceeded x, Time_exceeded y -> Bytes.equal x.context y.context
  | Care_of_advert x, Care_of_advert y ->
      Ipv4_addr.equal x.home y.home
      && Ipv4_addr.equal x.care_of y.care_of
      && x.lifetime = y.lifetime
  | ( ( Echo_request _ | Echo_reply _ | Dest_unreachable _ | Time_exceeded _
      | Care_of_advert _ ),
      _ ) ->
      false

let pp_unreach_code fmt c =
  Format.pp_print_string fmt
    (match c with
    | Net_unreachable -> "net-unreachable"
    | Host_unreachable -> "host-unreachable"
    | Protocol_unreachable -> "protocol-unreachable"
    | Port_unreachable -> "port-unreachable"
    | Fragmentation_needed -> "fragmentation-needed"
    | Admin_prohibited -> "admin-prohibited")

let pp fmt = function
  | Echo_request { ident; seq; _ } ->
      Format.fprintf fmt "ICMP echo-request id=%d seq=%d" ident seq
  | Echo_reply { ident; seq; _ } ->
      Format.fprintf fmt "ICMP echo-reply id=%d seq=%d" ident seq
  | Dest_unreachable { code; _ } ->
      Format.fprintf fmt "ICMP dest-unreachable (%a)" pp_unreach_code code
  | Time_exceeded _ -> Format.fprintf fmt "ICMP time-exceeded"
  | Care_of_advert { home; care_of; lifetime } ->
      Format.fprintf fmt "ICMP care-of-advert home=%a coa=%a life=%ds"
        Ipv4_addr.pp home Ipv4_addr.pp care_of lifetime
