(* Hot-path profiler: per-subsystem wall-clock accounting behind a single
   global flag.  Probe sites call [enter]/[leave] unconditionally; while
   profiling is off each call is one ref load and a conditional branch, so
   the instrumented fast path costs nothing measurable.

   Accounting distinguishes self time (a category's own work, children
   subtracted) from total time (including nested categories), using an
   explicit fixed-depth span stack: closures would allocate on every probe
   even when profiling is on, and the data plane nests only a handful of
   categories deep (dispatch -> agent -> routing -> checksum). *)

type category =
  | Dispatch
  | Routing
  | Checksum
  | Encap
  | Decap
  | Agent
  | Trace_emit

let n_categories = 7

let index = function
  | Dispatch -> 0
  | Routing -> 1
  | Checksum -> 2
  | Encap -> 3
  | Decap -> 4
  | Agent -> 5
  | Trace_emit -> 6

let all = [ Dispatch; Routing; Checksum; Encap; Decap; Agent; Trace_emit ]

let label = function
  | Dispatch -> "engine-dispatch"
  | Routing -> "routing-lookup"
  | Checksum -> "checksum"
  | Encap -> "encapsulation"
  | Decap -> "decapsulation"
  | Agent -> "agent-processing"
  | Trace_emit -> "trace-emit"

let enabled = ref false
let on () = !enabled

(* Flat per-category accumulators plus the span stack.  [active] tracks
   recursion depth per category so recursive spans (an agent resubmitting
   through the override hook) do not double-count total time. *)
let counts = Array.make n_categories 0
let total = Array.make n_categories 0.0
let self = Array.make n_categories 0.0
let active = Array.make n_categories 0
let max_depth = 64
let depth = ref 0
let s_cat = Array.make max_depth 0
let s_start = Array.make max_depth 0.0
let s_child = Array.make max_depth 0.0

let reset () =
  Array.fill counts 0 n_categories 0;
  Array.fill total 0 n_categories 0.0;
  Array.fill self 0 n_categories 0.0;
  Array.fill active 0 n_categories 0;
  depth := 0

let set_enabled b =
  enabled := b;
  if not b then depth := 0

let enter cat =
  if !enabled then begin
    let d = !depth in
    if d < max_depth then begin
      let i = index cat in
      s_cat.(d) <- i;
      s_start.(d) <- Sys.time ();
      s_child.(d) <- 0.0;
      active.(i) <- active.(i) + 1;
      depth := d + 1
    end
  end

let leave cat =
  if !enabled && !depth > 0 then begin
    let i = index cat in
    let d = !depth - 1 in
    (* An unmatched leave (enter was skipped by the depth guard, or
       profiling was switched on mid-span) is dropped rather than allowed
       to corrupt the stack. *)
    if s_cat.(d) = i then begin
      depth := d;
      let dt = Sys.time () -. s_start.(d) in
      active.(i) <- active.(i) - 1;
      counts.(i) <- counts.(i) + 1;
      if active.(i) = 0 then total.(i) <- total.(i) +. dt;
      self.(i) <- self.(i) +. (dt -. s_child.(d));
      if d > 0 then s_child.(d - 1) <- s_child.(d - 1) +. dt
    end
  end

let span cat f =
  enter cat;
  Fun.protect ~finally:(fun () -> leave cat) f

type entry = { cat : category; calls : int; total_s : float; self_s : float }

let snapshot () =
  List.filter_map
    (fun cat ->
      let i = index cat in
      if counts.(i) = 0 then None
      else
        Some { cat; calls = counts.(i); total_s = total.(i); self_s = self.(i) })
    all
