type t = { queue : (unit -> unit) Pqueue.t; mutable clock : float }

let create () = { queue = Pqueue.create (); clock = 0.0 }
let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at t.clock);
  Pqueue.add t.queue ~priority:at f

let after t delay f =
  if delay < 0.0 then invalid_arg "Engine.after: negative delay";
  schedule t ~at:(t.clock +. delay) f

let cancellable_after t delay f =
  let cancelled = ref false in
  after t delay (fun () -> if not !cancelled then f ());
  fun () -> cancelled := true

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      f ();
      true

let run ?until ?(max_events = 10_000_000) t =
  let events = ref 0 in
  let continue = ref true in
  while !continue && !events < max_events do
    match Pqueue.peek t.queue with
    | None -> continue := false
    | Some (at, _) -> (
        match until with
        | Some limit when at > limit ->
            t.clock <- limit;
            continue := false
        | _ ->
            ignore (step t);
            incr events)
  done

let pending t = Pqueue.length t.queue
let clear t = Pqueue.clear t.queue
