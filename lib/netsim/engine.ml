type stats = {
  executed : int;
  pending : int;
  max_pending : int;
  truncated : int;
  sim_time : float;
  wall_time : float;
  cpu_time : float;
}

type t = {
  queue : (unit -> unit) Pqueue.t;
  (* The clock lives in a one-element floatarray rather than a mutable
     float field so consumers polled on every trace event (the trace
     fast path) can read it as an unboxed load through [clock_cell],
     with no accessor call and no float boxing.  The field itself is
     mutable so a sharded net can point several engines at one shared
     cell (sequential sharded mode: one global clock). *)
  mutable clock : floatarray;
  (* Tie-break counter for same-timestamp events.  A ref cell rather
     than a plain int field so a sharded net can make all its engines
     draw from one shared counter, keeping one global FIFO order among
     simultaneous events across shard queues. *)
  mutable seq : int ref;
  mutable executed : int;
  mutable max_pending : int;
  mutable truncated : int;
  mutable wall_time : float;
  mutable cpu_time : float;
  mutable observer : (stats -> unit) option;
}

let create () =
  {
    queue = Pqueue.create ();
    clock = Float.Array.make 1 0.0;
    seq = ref 0;
    executed = 0;
    max_pending = 0;
    truncated = 0;
    wall_time = 0.0;
    cpu_time = 0.0;
    observer = None;
  }

let now t = Float.Array.get t.clock 0
let clock_cell t = t.clock
let use_clock_cell t cell = t.clock <- cell
let seq_counter t = t.seq
let use_seq_counter t r = t.seq <- r

let set_now t time =
  if time < Float.Array.get t.clock 0 then
    invalid_arg "Engine.set_now: time moves backward";
  Float.Array.set t.clock 0 time

let stats t =
  {
    executed = t.executed;
    pending = Pqueue.length t.queue;
    max_pending = t.max_pending;
    truncated = t.truncated;
    sim_time = Float.Array.get t.clock 0;
    wall_time = t.wall_time;
    cpu_time = t.cpu_time;
  }

let set_observer t f = t.observer <- f
let notify_observer t = match t.observer with Some f -> f (stats t) | None -> ()

let schedule t ~at f =
  let clk = Float.Array.get t.clock 0 in
  if at < clk then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at clk);
  let seq = !(t.seq) in
  t.seq := seq + 1;
  Pqueue.add_seq t.queue ~priority:at ~seq f;
  let depth = Pqueue.length t.queue in
  if depth > t.max_pending then t.max_pending <- depth

let after t delay f =
  if delay < 0.0 then invalid_arg "Engine.after: negative delay";
  schedule t ~at:(Float.Array.get t.clock 0 +. delay) f

let cancellable_after t delay f =
  let cancelled = ref false in
  after t delay (fun () -> if not !cancelled then f ());
  fun () -> cancelled := true

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      Float.Array.set t.clock 0 at;
      t.executed <- t.executed + 1;
      Prof.enter Prof.Dispatch;
      f ();
      Prof.leave Prof.Dispatch;
      true

let next_key t = Pqueue.min_key t.queue

let add_run_time t ~wall ~cpu =
  t.wall_time <- t.wall_time +. wall;
  t.cpu_time <- t.cpu_time +. cpu

let mark_truncated ?(max_events = 0) t =
  t.truncated <- t.truncated + 1;
  Logs.warn (fun m ->
      m "Engine.run: stopped after %d events with %d still pending" max_events
        (Pqueue.length t.queue))

let run ?until ?(max_events = 10_000_000) t =
  let wall_start = Unix.gettimeofday () in
  let cpu_start = Sys.time () in
  let events = ref 0 in
  let continue = ref true in
  while !continue && !events < max_events do
    match Pqueue.peek t.queue with
    | None -> continue := false
    | Some (at, _) -> (
        match until with
        | Some limit when at > limit ->
            Float.Array.set t.clock 0 limit;
            continue := false
        | _ ->
            ignore (step t);
            incr events)
  done;
  if !continue && !events >= max_events && not (Pqueue.is_empty t.queue) then
    (* The runaway guard fired: the run stopped with work still queued.
       Record it so callers (and the metrics layer) can see it. *)
    mark_truncated ~max_events t;
  add_run_time t
    ~wall:(Unix.gettimeofday () -. wall_start)
    ~cpu:(Sys.time () -. cpu_start);
  notify_observer t

let run_window ?until ?(max_events = max_int) ~horizon t =
  let events = ref 0 in
  let continue = ref true in
  while !continue && !events < max_events do
    match Pqueue.peek t.queue with
    | None -> continue := false
    | Some (at, _) ->
        if at >= horizon then continue := false
        else begin
          match until with
          | Some limit when at > limit -> continue := false
          | _ ->
              ignore (step t);
              incr events
        end
  done;
  !events

let pending t = Pqueue.length t.queue
let clear t = Pqueue.clear t.queue
