type stats = {
  executed : int;
  pending : int;
  max_pending : int;
  truncated : int;
  sim_time : float;
  wall_time : float;
}

type t = {
  queue : (unit -> unit) Pqueue.t;
  (* The clock lives in a one-element floatarray rather than a mutable
     float field so consumers polled on every trace event (the trace
     fast path) can read it as an unboxed load through [clock_cell],
     with no accessor call and no float boxing. *)
  clock : floatarray;
  mutable executed : int;
  mutable max_pending : int;
  mutable truncated : int;
  mutable wall_time : float;
  mutable observer : (stats -> unit) option;
}

let create () =
  {
    queue = Pqueue.create ();
    clock = Float.Array.make 1 0.0;
    executed = 0;
    max_pending = 0;
    truncated = 0;
    wall_time = 0.0;
    observer = None;
  }

let now t = Float.Array.get t.clock 0
let clock_cell t = t.clock

let stats t =
  {
    executed = t.executed;
    pending = Pqueue.length t.queue;
    max_pending = t.max_pending;
    truncated = t.truncated;
    sim_time = Float.Array.get t.clock 0;
    wall_time = t.wall_time;
  }

let set_observer t f = t.observer <- f

let schedule t ~at f =
  let clk = Float.Array.get t.clock 0 in
  if at < clk then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at clk);
  Pqueue.add t.queue ~priority:at f;
  let depth = Pqueue.length t.queue in
  if depth > t.max_pending then t.max_pending <- depth

let after t delay f =
  if delay < 0.0 then invalid_arg "Engine.after: negative delay";
  schedule t ~at:(Float.Array.get t.clock 0 +. delay) f

let cancellable_after t delay f =
  let cancelled = ref false in
  after t delay (fun () -> if not !cancelled then f ());
  fun () -> cancelled := true

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      Float.Array.set t.clock 0 at;
      t.executed <- t.executed + 1;
      Prof.enter Prof.Dispatch;
      f ();
      Prof.leave Prof.Dispatch;
      true

let run ?until ?(max_events = 10_000_000) t =
  let wall_start = Sys.time () in
  let events = ref 0 in
  let continue = ref true in
  while !continue && !events < max_events do
    match Pqueue.peek t.queue with
    | None -> continue := false
    | Some (at, _) -> (
        match until with
        | Some limit when at > limit ->
            Float.Array.set t.clock 0 limit;
            continue := false
        | _ ->
            ignore (step t);
            incr events)
  done;
  if !continue && !events >= max_events && not (Pqueue.is_empty t.queue) then begin
    (* The runaway guard fired: the run stopped with work still queued.
       Record it so callers (and the metrics layer) can see it. *)
    t.truncated <- t.truncated + 1;
    Logs.warn (fun m ->
        m "Engine.run: stopped after %d events with %d still pending"
          max_events (Pqueue.length t.queue))
  end;
  t.wall_time <- t.wall_time +. (Sys.time () -. wall_start);
  match t.observer with Some f -> f (stats t) | None -> ()

let pending t = Pqueue.length t.queue
let clear t = Pqueue.clear t.queue
