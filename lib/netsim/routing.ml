type route = {
  prefix : Ipv4_addr.Prefix.t;
  gateway : Ipv4_addr.t option;
  iface : string;
  metric : int;
}

let pp_route fmt r =
  Format.fprintf fmt "%a via %s dev %s metric %d" Ipv4_addr.Prefix.pp r.prefix
    (match r.gateway with Some g -> Ipv4_addr.to_string g | None -> "direct")
    r.iface r.metric

(* Routes kept sorted: longest prefix first, then lowest metric, then newest
   first (insertion order preserved by stable sort). *)
type table = { mutable routes : route list }

let create () = { routes = [] }

let order a b =
  match
    Int.compare (Ipv4_addr.Prefix.bits b.prefix) (Ipv4_addr.Prefix.bits a.prefix)
  with
  | 0 -> Int.compare a.metric b.metric
  | c -> c

let add t ?(metric = 0) ?gateway ~prefix ~iface () =
  let r = { prefix; gateway; iface; metric } in
  t.routes <- List.stable_sort order (r :: t.routes)

let add_default t ~gateway ~iface =
  add t ~gateway ~prefix:Ipv4_addr.Prefix.global ~iface ()

let remove t ~prefix =
  t.routes <-
    List.filter (fun r -> not (Ipv4_addr.Prefix.equal r.prefix prefix)) t.routes

let remove_iface t ~iface =
  t.routes <- List.filter (fun r -> r.iface <> iface) t.routes

let lookup t addr =
  List.find_opt (fun r -> Ipv4_addr.Prefix.mem addr r.prefix) t.routes

let routes t = t.routes
let clear t = t.routes <- []

let pp fmt t =
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_route r) t.routes
