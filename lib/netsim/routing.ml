type route = {
  prefix : Ipv4_addr.Prefix.t;
  gateway : Ipv4_addr.t option;
  iface : string;
  metric : int;
}

let pp_route fmt r =
  Format.fprintf fmt "%a via %s dev %s metric %d" Ipv4_addr.Prefix.pp r.prefix
    (match r.gateway with Some g -> Ipv4_addr.to_string g | None -> "direct")
    r.iface r.metric

(* Binary trie on destination-address bits.  The node reached by following
   the first [bits] bits of a network holds every route for exactly that
   prefix, kept sorted by metric (ascending) then insertion sequence
   (newest first), so the head of a node's list is that prefix's winner and
   the deepest non-empty node on a lookup walk is the longest match —
   exactly the longest-prefix / lowest-metric / newest-route preference of
   the old sorted-list table. *)
type node = {
  mutable here : (int * route) list;  (* (insertion seq, route) *)
  mutable zero : node option;
  mutable one : node option;
}

let new_node () = { here = []; zero = None; one = None }

type table = {
  mutable root : node;
  mutable seq : int;
  (* One-entry destination cache: forwarding typically sends runs of
     packets to the same destination, so remember the last answer until
     the table is mutated. *)
  mutable cache_addr : Ipv4_addr.t;
  mutable cache_route : route option;
  mutable cache_valid : bool;
}

let create () =
  {
    root = new_node ();
    seq = 0;
    cache_addr = Ipv4_addr.any;
    cache_route = None;
    cache_valid = false;
  }

let invalidate t = t.cache_valid <- false

let bit (addr : int32) d =
  Int32.to_int (Int32.shift_right_logical addr (31 - d)) land 1

let rec find_node node net depth bits ~make =
  if depth = bits then Some node
  else
    let b = bit net depth in
    match (if b = 0 then node.zero else node.one) with
    | Some child -> find_node child net (depth + 1) bits ~make
    | None ->
        if not make then None
        else begin
          let child = new_node () in
          if b = 0 then node.zero <- Some child else node.one <- Some child;
          find_node child net (depth + 1) bits ~make
        end

let add t ?(metric = 0) ?gateway ~prefix ~iface () =
  let r = { prefix; gateway; iface; metric } in
  let node =
    Option.get
      (find_node t.root
         (Ipv4_addr.to_int32 (Ipv4_addr.Prefix.network prefix))
         0
         (Ipv4_addr.Prefix.bits prefix)
         ~make:true)
  in
  t.seq <- t.seq + 1;
  (* Insert before the first entry of equal-or-greater metric: lower metric
     wins, and among equal metrics the newest route comes first. *)
  let rec ins = function
    | (s', r') :: rest when r'.metric < metric -> (s', r') :: ins rest
    | rest -> (t.seq, r) :: rest
  in
  node.here <- ins node.here;
  invalidate t

let add_default t ~gateway ~iface =
  add t ~gateway ~prefix:Ipv4_addr.Prefix.global ~iface ()

let remove t ?iface ?metric ~prefix () =
  (match
     find_node t.root
       (Ipv4_addr.to_int32 (Ipv4_addr.Prefix.network prefix))
       0
       (Ipv4_addr.Prefix.bits prefix)
       ~make:false
   with
  | None -> ()
  | Some node ->
      let matches (_, r) =
        (match iface with None -> true | Some i -> r.iface = i)
        && match metric with None -> true | Some m -> r.metric = m
      in
      node.here <- List.filter (fun e -> not (matches e)) node.here);
  invalidate t

let remove_iface t ~iface =
  let rec strip node =
    node.here <- List.filter (fun (_, r) -> r.iface <> iface) node.here;
    Option.iter strip node.zero;
    Option.iter strip node.one
  in
  strip t.root;
  invalidate t

let lookup_uncached t addr =
  let a = Ipv4_addr.to_int32 addr in
  let rec walk node depth best =
    let best = match node.here with (_, r) :: _ -> Some r | [] -> best in
    if depth = 32 then best
    else
      match (if bit a depth = 0 then node.zero else node.one) with
      | None -> best
      | Some child -> walk child (depth + 1) best
  in
  walk t.root 0 None

let lookup t addr =
  Prof.enter Prof.Routing;
  let r =
    if t.cache_valid && Ipv4_addr.equal addr t.cache_addr then t.cache_route
    else begin
      let r = lookup_uncached t addr in
      t.cache_addr <- addr;
      t.cache_route <- r;
      t.cache_valid <- true;
      r
    end
  in
  Prof.leave Prof.Routing;
  r

let routes t =
  let acc = ref [] in
  let rec collect node =
    List.iter (fun e -> acc := e :: !acc) node.here;
    Option.iter collect node.zero;
    Option.iter collect node.one
  in
  collect t.root;
  List.stable_sort
    (fun (sa, a) (sb, b) ->
      match
        Int.compare
          (Ipv4_addr.Prefix.bits b.prefix)
          (Ipv4_addr.Prefix.bits a.prefix)
      with
      | 0 -> (
          match Int.compare a.metric b.metric with
          | 0 -> Int.compare sb sa (* newest first *)
          | c -> c)
      | c -> c)
    !acc
  |> List.map snd

let clear t =
  t.root <- new_node ();
  invalidate t

let pp fmt t =
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_route r) (routes t)
