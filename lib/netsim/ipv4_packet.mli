(** IPv4 packets with real wire encoding, including the three encapsulation
    formats discussed in the paper (§2, §3.3):

    - IP-in-IP ([Encap], protocol 4): a complete inner IP packet carried as
      payload; 20 bytes of overhead — the figure the paper quotes.
    - Generic Routing Encapsulation ([Gre_encap], protocol 47, RFC 1702):
      4-byte GRE header plus the inner packet; 24 bytes of overhead.
    - Minimal encapsulation ([Min_encap], protocol 55, Perkins draft): the
      inner header is compressed into a 12-byte extension (we always carry
      the original-source field), so the overhead is 12 bytes.

    Structured payloads (UDP/TCP/ICMP) are parsed on decode when the packet
    is not a fragment; fragments carry [Raw] payloads until reassembled by
    {!Fragment}. *)

type protocol =
  | P_icmp  (** 1 *)
  | P_ipip  (** 4 — IP-in-IP encapsulation *)
  | P_tcp  (** 6 *)
  | P_udp  (** 17 *)
  | P_gre  (** 47 *)
  | P_minimal  (** 55 — minimal encapsulation *)
  | P_other of int

val protocol_to_int : protocol -> int
val protocol_of_int : int -> protocol
val pp_protocol : Format.formatter -> protocol -> unit

type t = {
  tos : int;
  ident : int;
  dont_fragment : bool;
  more_fragments : bool;
  frag_offset : int;  (** in 8-byte units, as on the wire *)
  ttl : int;
  protocol : protocol;
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  options : Bytes.t;  (** raw options; length must be a multiple of 4 *)
  payload : payload;
}

and payload =
  | Raw of Bytes.t
  | Udp of Udp_wire.t
  | Tcp of Tcp_wire.t
  | Icmp of Icmp_wire.t
  | Encap of t  (** IP-in-IP inner packet *)
  | Gre_encap of t
  | Min_encap of t
      (** Inner packet reconstructed from / compressed into the minimal
          encapsulation header.  On the wire only the inner protocol, source
          and destination are carried; other inner header fields are taken
          from the outer header on decode. *)

val min_header_length : int
(** 20 — an IPv4 header with no options. *)

val ipip_overhead : int
(** 20 — the encapsulation overhead the paper quotes (§3.3). *)

val gre_overhead : int
(** 24 — outer header plus 4-byte GRE header. *)

val minimal_overhead : int
(** 12 — the minimal-encapsulation extension header. *)

val make :
  ?tos:int ->
  ?ident:int ->
  ?dont_fragment:bool ->
  ?ttl:int ->
  ?options:Bytes.t ->
  protocol:protocol ->
  src:Ipv4_addr.t ->
  dst:Ipv4_addr.t ->
  payload ->
  t
(** Build an unfragmented packet.  Defaults: [tos=0], [ident=0],
    [dont_fragment=false], [ttl=64], no options.
    @raise Invalid_argument on out-of-range fields or options whose length
    is not a multiple of 4. *)

val protocol_for_payload : payload -> protocol
(** The protocol number implied by a structured payload ([P_udp] for [Udp]
    etc.).  [Raw] maps to [P_other 253] (RFC 3692 experimental). *)

val header_length : t -> int
val payload_byte_length : payload -> int
val byte_length : t -> int
(** Total encoded length, computed without allocating. *)

val encode : t -> Bytes.t
(** Full wire encoding with header checksum.
    @raise Invalid_argument if the packet exceeds 65535 bytes. *)

val decode : Bytes.t -> (t, string) result
(** Parse a wire packet, verifying the header checksum and, for structured
    payloads, the transport checksum. *)

val reparse_payload : t -> t
(** If the payload is [Raw] and the packet is not a fragment, attempt to
    parse it into a structured payload according to [protocol] (used after
    fragment reassembly).  Returns the packet unchanged on failure. *)

val decrement_ttl : t -> t option
(** [None] when the TTL reaches zero. *)

val header_checksum : t -> int
(** The header checksum [encode] would emit for this packet, computed
    field-wise without serialising — equal to the 16-bit value at offset
    10 of [encode t]. *)

val decrement_ttl_checksum : checksum:int -> t -> int
(** [decrement_ttl_checksum ~checksum t] is [header_checksum] of [t] with
    its TTL one lower, derived from [checksum] (the pre-decrement header
    checksum) by RFC 1624 incremental update — the forwarding fast path,
    no per-field re-summing.
    @raise Invalid_argument if [checksum] is not a 16-bit value. *)

val is_fragment : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** One-line summary: addresses, protocol, size, nesting. *)
