type drop_reason =
  | Ingress_filter
  | Transit_filter
  | Firewall of string
  | Ttl_expired
  | No_route
  | Mtu_exceeded
  | Arp_unresolved
  | Not_for_me
  | Link_down
  | Link_loss
  | Link_flap
  | Partitioned
  | Reassembly_timeout
  | Custom of string

let pp_drop_reason fmt = function
  | Ingress_filter -> Format.pp_print_string fmt "ingress-source-filter"
  | Transit_filter -> Format.pp_print_string fmt "transit-filter"
  | Firewall s -> Format.fprintf fmt "firewall(%s)" s
  | Ttl_expired -> Format.pp_print_string fmt "ttl-expired"
  | No_route -> Format.pp_print_string fmt "no-route"
  | Mtu_exceeded -> Format.pp_print_string fmt "mtu-exceeded"
  | Arp_unresolved -> Format.pp_print_string fmt "arp-unresolved"
  | Not_for_me -> Format.pp_print_string fmt "not-for-me"
  | Link_down -> Format.pp_print_string fmt "link-down"
  | Link_loss -> Format.pp_print_string fmt "link-loss"
  | Link_flap -> Format.pp_print_string fmt "link-flap"
  | Partitioned -> Format.pp_print_string fmt "partitioned"
  | Reassembly_timeout -> Format.pp_print_string fmt "reassembly-timeout"
  | Custom s -> Format.fprintf fmt "custom(%s)" s

let drop_reason_equal (a : drop_reason) b = a = b

type frame_info = { id : int; flow : int; pkt : Ipv4_packet.t }

type event =
  | Send of { node : string; frame : frame_info }
  | Transmit of { link : string; frame : frame_info; bytes : int }
  | Forward of {
      node : string;
      in_iface : string;
      out_iface : string;
      frame : frame_info;
    }
  | Drop of { node : string; reason : drop_reason; frame : frame_info }
  | Deliver of { node : string; frame : frame_info }
  | Encapsulate of { node : string; frame : frame_info }
  | Decapsulate of { node : string; frame : frame_info }
  | Icmp_error of { node : string; reason : drop_reason; frame : frame_info }

type record = { time : float; event : event }

(* Per-flow index: the flow's records (newest first) plus running counters,
   so the flow queries below are O(flow) or O(1) instead of re-walking (and
   re-reversing) the whole log on every call. *)
type flow_entry = {
  mutable f_rev_records : record list;
  mutable f_transmissions : int;
  mutable f_wire_bytes : int;
}

type t = {
  mutable rev_records : record list;
  mutable count : int;
  by_flow : (int, flow_entry) Hashtbl.t;
  mutable observer : (record -> unit) option;
      (* per-trace tap (the invariant oracle); independent of the
         process-wide sink below *)
  mutable enabled : bool;
      (* when false and no observer or sink is installed, [interested] is
         false and the data plane skips event construction entirely *)
}

(* Optional process-wide tap, fed every record from every trace as it is
   written.  This is how the CLI streams JSONL telemetry out of code that
   builds its own worlds internally (e.g. the experiment runners). *)
let sink : (record -> unit) option ref = ref None

let set_sink f = sink := f

let create () =
  {
    rev_records = [];
    count = 0;
    by_flow = Hashtbl.create 64;
    observer = None;
    enabled = true;
  }

let set_observer t f = t.observer <- f
let set_enabled t b = t.enabled <- b
let enabled t = t.enabled

(* An installed observer (invariant oracle) or process-wide sink
   (--trace-json) overrides gating: those consumers must see every event
   whether or not in-memory logging was turned off. *)
let interested t = t.enabled || t.observer <> None || !sink <> None

let frame_of = function
  | Send { frame; _ }
  | Transmit { frame; _ }
  | Forward { frame; _ }
  | Drop { frame; _ }
  | Deliver { frame; _ }
  | Encapsulate { frame; _ }
  | Decapsulate { frame; _ }
  | Icmp_error { frame; _ } ->
      frame

let flow_entry t flow =
  match Hashtbl.find_opt t.by_flow flow with
  | Some e -> e
  | None ->
      let e = { f_rev_records = []; f_transmissions = 0; f_wire_bytes = 0 } in
      Hashtbl.add t.by_flow flow e;
      e

let record t ~time event =
  let r = { time; event } in
  t.rev_records <- r :: t.rev_records;
  t.count <- t.count + 1;
  let e = flow_entry t (frame_of event).flow in
  e.f_rev_records <- r :: e.f_rev_records;
  (match event with
  | Transmit { bytes; _ } ->
      e.f_transmissions <- e.f_transmissions + 1;
      e.f_wire_bytes <- e.f_wire_bytes + bytes
  | _ -> ());
  (match t.observer with Some f -> f r | None -> ());
  match !sink with Some f -> f r | None -> ()

let records t = List.rev t.rev_records

let clear t =
  t.rev_records <- [];
  t.count <- 0;
  Hashtbl.reset t.by_flow

let length t = t.count

let flows t =
  Hashtbl.fold (fun flow _ acc -> flow :: acc) t.by_flow []
  |> List.sort compare

let flow_records t ~flow =
  match Hashtbl.find_opt t.by_flow flow with
  | None -> []
  | Some e -> List.rev e.f_rev_records

let transmissions t ~flow =
  match Hashtbl.find_opt t.by_flow flow with
  | None -> 0
  | Some e -> e.f_transmissions

let wire_bytes t ~flow =
  match Hashtbl.find_opt t.by_flow flow with
  | None -> 0
  | Some e -> e.f_wire_bytes

let delivery_time t ~flow ~node =
  List.find_map
    (fun r ->
      match r.event with
      | Deliver { node = n; frame } when n = node && frame.flow = flow ->
          Some r.time
      | _ -> None)
    (flow_records t ~flow)

let delivered t ~flow ~node = delivery_time t ~flow ~node <> None

let send_time t ~flow =
  List.find_map
    (fun r ->
      match r.event with
      | Send { frame; _ } when frame.flow = flow -> Some r.time
      | _ -> None)
    (flow_records t ~flow)

let drops t ~flow =
  List.filter_map
    (fun r ->
      match r.event with
      | Drop { node; reason; frame } when frame.flow = flow ->
          Some (node, reason)
      | _ -> None)
    (flow_records t ~flow)

let path t ~flow =
  List.filter_map
    (fun r ->
      match r.event with
      | Send { node; frame }
      | Forward { node; frame; _ }
      | Deliver { node; frame }
      | Encapsulate { node; frame }
      | Decapsulate { node; frame }
        when frame.flow = flow ->
          Some node
      | _ -> None)
    (flow_records t ~flow)
  |> List.fold_left
       (fun acc node ->
         match acc with
         | last :: _ when last = node -> acc
         | _ -> node :: acc)
       []
  |> List.rev

let pp_frame fmt (f : frame_info) =
  Format.fprintf fmt "#%d/f%d %a" f.id f.flow Ipv4_packet.pp f.pkt

let pp_event fmt = function
  | Send { node; frame } -> Format.fprintf fmt "send    %-8s %a" node pp_frame frame
  | Transmit { link; frame; bytes } ->
      Format.fprintf fmt "wire    %-8s %dB %a" link bytes pp_frame frame
  | Forward { node; in_iface; out_iface; frame } ->
      Format.fprintf fmt "forward %-8s %s->%s %a" node in_iface out_iface
        pp_frame frame
  | Drop { node; reason; frame } ->
      Format.fprintf fmt "DROP    %-8s %a %a" node pp_drop_reason reason
        pp_frame frame
  | Deliver { node; frame } ->
      Format.fprintf fmt "deliver %-8s %a" node pp_frame frame
  | Encapsulate { node; frame } ->
      Format.fprintf fmt "encap   %-8s %a" node pp_frame frame
  | Decapsulate { node; frame } ->
      Format.fprintf fmt "decap   %-8s %a" node pp_frame frame
  | Icmp_error { node; reason; frame } ->
      Format.fprintf fmt "icmperr %-8s %a %a" node pp_drop_reason reason
        pp_frame frame

let pp_record fmt r = Format.fprintf fmt "%8.4f %a" r.time pp_event r.event

let dump fmt t =
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_record r) (records t)
