type drop_reason =
  | Ingress_filter
  | Transit_filter
  | Firewall of string
  | Ttl_expired
  | No_route
  | Mtu_exceeded
  | Arp_unresolved
  | Not_for_me
  | Link_down
  | Link_loss
  | Link_flap
  | Partitioned
  | Reassembly_timeout
  | Custom of string

let pp_drop_reason fmt = function
  | Ingress_filter -> Format.pp_print_string fmt "ingress-source-filter"
  | Transit_filter -> Format.pp_print_string fmt "transit-filter"
  | Firewall s -> Format.fprintf fmt "firewall(%s)" s
  | Ttl_expired -> Format.pp_print_string fmt "ttl-expired"
  | No_route -> Format.pp_print_string fmt "no-route"
  | Mtu_exceeded -> Format.pp_print_string fmt "mtu-exceeded"
  | Arp_unresolved -> Format.pp_print_string fmt "arp-unresolved"
  | Not_for_me -> Format.pp_print_string fmt "not-for-me"
  | Link_down -> Format.pp_print_string fmt "link-down"
  | Link_loss -> Format.pp_print_string fmt "link-loss"
  | Link_flap -> Format.pp_print_string fmt "link-flap"
  | Partitioned -> Format.pp_print_string fmt "partitioned"
  | Reassembly_timeout -> Format.pp_print_string fmt "reassembly-timeout"
  | Custom s -> Format.fprintf fmt "custom(%s)" s

let drop_reason_equal (a : drop_reason) b = a = b

type frame_info = { id : int; flow : int; pkt : Ipv4_packet.t }

type event =
  | Send of { node : string; frame : frame_info }
  | Transmit of { link : string; frame : frame_info; bytes : int }
  | Forward of {
      node : string;
      in_iface : string;
      out_iface : string;
      frame : frame_info;
    }
  | Drop of { node : string; reason : drop_reason; frame : frame_info }
  | Deliver of { node : string; frame : frame_info }
  | Encapsulate of { node : string; frame : frame_info }
  | Decapsulate of { node : string; frame : frame_info }
  | Icmp_error of { node : string; reason : drop_reason; frame : frame_info }

type record = { time : float; event : event }

(* Per-flow index: the flow's records (newest first) plus running counters,
   so the flow queries below are O(flow) or O(1) instead of re-walking (and
   re-reversing) the whole log on every call. *)
type flow_entry = {
  mutable f_rev_records : record list;
  mutable f_transmissions : int;
  mutable f_wire_bytes : int;
}

type t = {
  mutable rev_records : record list;
  mutable count : int;
  by_flow : (int, flow_entry) Hashtbl.t;
  mutable observers : (int * (record -> unit)) list;
      (* per-trace taps (invariant oracle, flight recorder...), in
         installation order; independent of the process-wide sinks below *)
  mutable obs_fns : (record -> unit) array;
      (* flattened copy of [observers] for allocation-free dispatch *)
  mutable legacy_observer : int option;
      (* the handle [set_observer] manages, so the optional-argument API
         keeps its replace-in-place semantics on top of the tee *)
  mutable enabled : bool;
  mutable buffered : bool;
      (* quarantine mode for per-shard traces in parallel runs: [record]
         only appends to the in-memory log — no observers, no process-wide
         sinks, no rings, no per-flow index — so a shard's domain never
         touches shared state.  The barrier coordinator [drain]s the log
         and replays it through the main trace, which feeds every consumer
         in deterministic merged order. *)
  mutable local_on : bool;
      (* cached [enabled || observers present] — see [sink_on] *)
  mutable time_source : floatarray;
      (* where [emit_*] read the current time — the owning net points
         this at its engine's clock cell, so the fast path gets the
         timestamp with one unboxed load instead of an accessor call
         and a boxed float per event *)
      (* when false and no observer or sink is installed, [interested] is
         false and the data plane skips event construction entirely *)
}

type observer = int
type sink = int

(* Process-wide taps, fed every record from every trace as it is written.
   This is how the CLI streams JSONL telemetry (or a pcap) out of code
   that builds its own worlds internally (e.g. the experiment runners).
   Sinks compose: [--trace-json], [--pcap] and a flight recorder can all
   be installed at once. *)
let sink_seq = ref 0
let sinks : (int * (record -> unit)) list ref = ref []
let sink_fns : (record -> unit) array ref = ref [||]

let sink_on = ref false
(* cached [Array.length !sink_fns > 0]: the emit fast path tests
   full-consumer interest once per packet event, so it reads two cached
   booleans instead of recomputing three array lengths *)

let rebuild_sinks () =
  sink_fns := Array.of_list (List.map snd !sinks);
  sink_on := Array.length !sink_fns > 0

let add_sink f =
  incr sink_seq;
  let id = !sink_seq in
  sinks := !sinks @ [ (id, f) ];
  rebuild_sinks ();
  id

let remove_sink id =
  sinks := List.filter (fun (i, _) -> i <> id) !sinks;
  rebuild_sinks ()

(* Back-compat single-slot facade: [set_sink (Some f)] replaces whatever
   it installed last time but leaves other sinks alone. *)
let legacy_sink = ref None

let set_sink f =
  (match !legacy_sink with
  | Some id ->
      remove_sink id;
      legacy_sink := None
  | None -> ());
  match f with Some f -> legacy_sink := Some (add_sink f) | None -> ()

(* Flight-recorder rings: allocation-free last-K event capture on the
   capacity fast path.

   A ring does not retain the [record] values other consumers get:
   retaining them looks free but is not — the freshly allocated
   record/event/frame/packet graph of every hop would survive into the
   next minor collection, be promoted to the major heap, and die there,
   turning the whole event stream into major-GC churn (measured at ~50%
   of packets/sec on the E20 overhead ladder, against <10% for this
   layout).  Instead [ring_store] explodes each event into preallocated
   scalar arrays — time, frame id/flow, every IPv4 header field plus the
   event kind and protocol packed into one int ([pack layout] below) —
   and keeps only two pointers per slot: the packet's payload and
   options, which are shared across all events of a datagram's journey,
   so the amortised retention per event is a few words.

   The storage primitive lives here rather than in the observability
   layer so the emit fast path below can reach it with a direct call
   (floats unboxed, no closure dispatch), and so packing and unpacking
   sit next to each other.  [Netobs.Recorder] wraps a ring with the
   user-facing capture API.

   Events that go through [record] (full consumers attached, or an emit
   site with no specialised [emit_*] helper) are replayed into attached
   rings by destructuring, so a ring sees every event exactly once
   either way. *)

(* Event kind tags, numbered in declaration order of [event]. *)
let k_send = 0

let k_transmit = 1
let k_forward = 2
let k_drop = 3
let k_deliver = 4
let k_encapsulate = 5
let k_decapsulate = 6
let k_icmp_error = 7

let no_iface = ""
let no_reason = Ttl_expired
let no_options = Bytes.create 0
let no_payload = Ipv4_packet.Raw no_options

(* Physical-equality memo sentinel: never equal to a real packet. *)
let dummy_pkt : Ipv4_packet.t =
  {
    Ipv4_packet.tos = 0;
    ident = 0;
    dont_fragment = false;
    more_fragments = false;
    frag_offset = 0;
    ttl = 0;
    protocol = Ipv4_packet.protocol_of_int 255;
    src = Ipv4_addr.of_int32 0l;
    dst = Ipv4_addr.of_int32 0l;
    options = no_options;
    payload = no_payload;
  }

type ring = {
  ring_capacity : int;
  (* Slot storage is one strided scalar lane (a store touches a single
     64-byte cache line per slot) plus a payload-pointer lane — not one
     array per field: at capacity scale the ring's working set is
     written cyclically, so scattered lanes would miss on every field,
     and every pointer-array store pays the GC write barrier.

     Scalar lane, stride 8 (one line per slot):
       +0 hdr (pack layout below)  +1 src  +2 dst  +3 frame id
       +4 flow  +5 bytes  +6 name id  +7 in/out iface ids (forward only)
     Name / iface strings are interned to small ids (tables below), so
     the payload is the only per-event pointer store. *)
  a_time : float array;
  ring_scratch : floatarray;
      (* staging cell for the boxed-float [ring_store] entry *)
  a_scalar : int array;
  a_payload : Obj.t array;
  a_reason : drop_reason array;  (* drop / icmp-error only *)
  a_options : Bytes.t array;  (* only written when non-empty *)
  (* String interning, keyed on physical identity: node, link and
     interface names come from the topology and live as long as the net,
     so the same pointers recur for the whole run.  [i_keys]/[i_slot_ids]
     form a direct-mapped cache from pointer bits to id (two loads and a
     compare on the hot path); [i_names] is the id -> string table the
     cold dump reads.  A moved or fresh string just misses the cache and
     re-interns — the arrays are ordinary scanned pointer arrays, so GC
     keeps the keys valid. *)
  i_keys : Obj.t array;
  i_slot_ids : int array;
  mutable i_names : Obj.t array;
  mutable i_count : int;
  mutable ring_next : int;  (* write cursor: oldest slot once wrapped *)
  mutable ring_seen : int;  (* events offered, sampled-out ones included *)
  mutable ring_kept : int;  (* events written into the ring *)
  ring_sample_every : int;
  ring_seed : int;
  (* Sampling precomputed as a threshold compare — [hash <= threshold]
     over the hash's low 30 bits (where multiplying by an odd constant
     actually mixes small flow ids) keeps roughly 1 flow in
     [sample_every] — so the per-event check is a multiply, xor and
     compare with no branchy special case and no hardware divide ([mod])
     on the store path.  The full 30-bit range when [sample_every = 1]:
     every hash passes. *)
  ring_threshold : int;
  ring_xseed : int;  (* seed premixed for the hash *)
  (* Packed-header memo keyed on the (immutable) packet's physical
     identity: all events of one hop share a packet pointer, so roughly
     every other store skips re-reading and re-packing the header. *)
  mutable m_pkt : Ipv4_packet.t;
  mutable m_hdr : int;
  mutable m_src : int;
  mutable m_dst : int;
}

(* pack layout of [a_hdr], low to high:
   ttl 0-7, frag_offset 8-20, ident 21-36, kind 37-39,
   has_options 44, more_fragments 45, dont_fragment 46,
   tos 47-54, protocol 55-62 *)
let bit_df = 1 lsl 46

let bit_mf = 1 lsl 45
let bit_opts = 1 lsl 44

let make_ring ?(sample_every = 1) ?(seed = 0) ~capacity () =
  if capacity <= 0 then invalid_arg "Trace.make_ring: capacity must be positive";
  if sample_every <= 0 then
    invalid_arg "Trace.make_ring: sample_every must be positive";
  {
    ring_capacity = capacity;
    a_time = Array.make capacity 0.0;
    ring_scratch = Float.Array.make 1 0.0;
    a_scalar = Array.make (capacity * 8) 0;
    a_payload = Array.make capacity (Obj.repr no_payload);
    a_reason = Array.make capacity no_reason;
    a_options = Array.make capacity no_options;
    i_keys = Array.make 256 (Obj.repr no_options);
    i_slot_ids = Array.make 256 0;
    i_names = Array.make 64 (Obj.repr "");
    i_count = 1 (* id 0 is "" *);
    ring_next = 0;
    ring_seen = 0;
    ring_kept = 0;
    ring_sample_every = sample_every;
    ring_seed = seed;
    ring_threshold = 0x3FFFFFFF / sample_every;
    ring_xseed = seed * 40503;
    m_pkt = dummy_pkt;
    m_hdr = 0;
    m_src = 0;
    m_dst = 0;
  }

let ring_capacity rg = rg.ring_capacity
let ring_seen rg = rg.ring_seen
let ring_kept rg = rg.ring_kept
let ring_length rg = min rg.ring_kept rg.ring_capacity

(* Deterministic 1-in-N flow sampling: a flow is in or out of the capture
   for the whole run, decided by an integer hash mix of (flow, seed) — so
   sampled captures keep whole conversations, and the same seed selects
   the same flows on every replay. *)
let ring_sampled rg flow =
  ((flow * 2654435761) lxor rg.ring_xseed) land 0x3FFFFFFF <= rg.ring_threshold

(* Re-read and re-pack the header scalars of a packet not seen by the
   previous store. *)
let ring_repack rg (p : Ipv4_packet.t) =
  let has_opts = Bytes.length p.Ipv4_packet.options > 0 in
  rg.m_pkt <- p;
  rg.m_hdr <-
    (Ipv4_packet.protocol_to_int p.Ipv4_packet.protocol lsl 55)
    lor (p.Ipv4_packet.tos lsl 47)
    lor (if p.Ipv4_packet.dont_fragment then bit_df else 0)
    lor (if p.Ipv4_packet.more_fragments then bit_mf else 0)
    lor (if has_opts then bit_opts else 0)
    lor (p.Ipv4_packet.ident lsl 21)
    lor (p.Ipv4_packet.frag_offset lsl 8)
    lor p.Ipv4_packet.ttl;
  rg.m_src <- Int32.to_int (Ipv4_addr.to_int32 p.Ipv4_packet.src);
  rg.m_dst <- Int32.to_int (Ipv4_addr.to_int32 p.Ipv4_packet.dst)

(* Interning slow path: the direct-mapped cache missed.  Scan the id
   table for a physical match (a collision or a moved string), append if
   genuinely new, and refresh the cache slot. *)
let intern_slow rg (name : string) h =
  let key = Obj.repr name in
  let n = rg.i_count in
  let id = ref (-1) in
  (let names = rg.i_names in
   try
     for i = 0 to n - 1 do
       if Array.unsafe_get names i == key then begin
         id := i;
         raise Exit
       end
     done
   with Exit -> ());
  let id =
    if !id >= 0 then !id
    else begin
      if n = Array.length rg.i_names then begin
        let bigger = Array.make (2 * n) (Obj.repr "") in
        Array.blit rg.i_names 0 bigger 0 n;
        rg.i_names <- bigger
      end;
      rg.i_names.(n) <- key;
      rg.i_count <- n + 1;
      n
    end
  in
  rg.i_keys.(h) <- key;
  rg.i_slot_ids.(h) <- id;
  id

(* Pointer-bits hash of an interned string: transient use only — a moved
   string misses the cache and re-interns, it is never read back through
   these bits. *)
let name_id rg (name : string) =
  let h = ((Obj.magic name : int) lsr 2) land 255 in
  if Array.unsafe_get rg.i_keys h == Obj.repr name then
    Array.unsafe_get rg.i_slot_ids h
  else intern_slow rg name h

(* One event into one slot.  The slot index is invariantly < capacity, so
   the stores use unsafe accessors — this runs once per trace event at
   capacity scale. *)
(* The hot entry takes the *cell* the timestamp lives in, not the float:
   the classical compiler boxes float arguments at out-of-line calls, so
   a [float] parameter here would cost one minor allocation per event on
   the otherwise allocation-free fast path. *)
let ring_store_cell rg (time_cell : floatarray) kind name in_if out_if reason
    id flow (pkt : Ipv4_packet.t) bytes =
  rg.ring_seen <- rg.ring_seen + 1;
  if
    ((flow * 2654435761) lxor rg.ring_xseed) land 0x3FFFFFFF
    <= rg.ring_threshold
  then begin
    let i = rg.ring_next in
    if pkt != rg.m_pkt then ring_repack rg pkt;
    let h = rg.m_hdr lor (kind lsl 37) in
    let s = rg.a_scalar and sb = i lsl 3 in
    Array.unsafe_set s sb h;
    Array.unsafe_set s (sb + 1) rg.m_src;
    Array.unsafe_set s (sb + 2) rg.m_dst;
    Array.unsafe_set s (sb + 3) id;
    Array.unsafe_set s (sb + 4) flow;
    Array.unsafe_set s (sb + 5) bytes;
    Array.unsafe_set s (sb + 6) (name_id rg name);
    Array.unsafe_set rg.a_time i (Float.Array.unsafe_get time_cell 0);
    Array.unsafe_set rg.a_payload i (Obj.repr pkt.Ipv4_packet.payload);
    if h land bit_opts <> 0 then
      Array.unsafe_set rg.a_options i pkt.Ipv4_packet.options;
    if kind = k_forward then
      Array.unsafe_set s (sb + 7)
        ((name_id rg in_if lsl 20) lor name_id rg out_if)
    else if kind = k_drop || kind = k_icmp_error then
      Array.unsafe_set rg.a_reason i reason;
    rg.ring_next <- (if i + 1 = rg.ring_capacity then 0 else i + 1);
    rg.ring_kept <- rg.ring_kept + 1
  end

(* Boxed-float convenience entry for replay and [Recorder.note], where
   the caller holds a [float] (already boxed) rather than a clock cell. *)
let ring_store rg time kind name in_if out_if reason id flow pkt bytes =
  Float.Array.unsafe_set rg.ring_scratch 0 time;
  ring_store_cell rg rg.ring_scratch kind name in_if out_if reason id flow pkt
    bytes

let ring_clear rg =
  Array.fill rg.a_payload 0 rg.ring_capacity (Obj.repr no_payload);
  Array.fill rg.a_reason 0 rg.ring_capacity no_reason;
  Array.fill rg.a_options 0 rg.ring_capacity no_options;
  (* the intern tables survive a clear: ids already stored are gone with
     the slots, and keeping the table warm is free *)
  rg.m_pkt <- dummy_pkt;
  rg.ring_next <- 0;
  rg.ring_seen <- 0;
  rg.ring_kept <- 0

(* Cold path: rebuild a structurally identical record from a slot.  The
   pointer-lane reads are typed by the fixed per-offset discipline of
   [ring_store]. *)
let ring_record_at rg i =
  let sb = i lsl 3 in
  let h = rg.a_scalar.(sb) in
  let pkt =
    {
      Ipv4_packet.tos = (h lsr 47) land 0xff;
      ident = (h lsr 21) land 0xffff;
      dont_fragment = h land bit_df <> 0;
      more_fragments = h land bit_mf <> 0;
      frag_offset = (h lsr 8) land 0x1fff;
      ttl = h land 0xff;
      protocol = Ipv4_packet.protocol_of_int ((h lsr 55) land 0xff);
      src = Ipv4_addr.of_int32 (Int32.of_int rg.a_scalar.(sb + 1));
      dst = Ipv4_addr.of_int32 (Int32.of_int rg.a_scalar.(sb + 2));
      (* the options slot is only written when non-empty, so the array
         may hold a stale pointer: trust the flag bit *)
      options = (if h land bit_opts <> 0 then rg.a_options.(i) else no_options);
      payload = (Obj.obj rg.a_payload.(i) : Ipv4_packet.payload);
    }
  in
  let frame = { id = rg.a_scalar.(sb + 3); flow = rg.a_scalar.(sb + 4); pkt } in
  let name : string = Obj.obj rg.i_names.(rg.a_scalar.(sb + 6)) in
  let event =
    match (h lsr 37) land 0x7 with
    | 0 -> Send { node = name; frame }
    | 1 -> Transmit { link = name; frame; bytes = rg.a_scalar.(sb + 5) }
    | 2 ->
        let w = rg.a_scalar.(sb + 7) in
        Forward
          {
            node = name;
            in_iface = (Obj.obj rg.i_names.(w lsr 20) : string);
            out_iface = (Obj.obj rg.i_names.(w land 0xFFFFF) : string);
            frame;
          }
    | 3 -> Drop { node = name; reason = rg.a_reason.(i); frame }
    | 4 -> Deliver { node = name; frame }
    | 5 -> Encapsulate { node = name; frame }
    | 6 -> Decapsulate { node = name; frame }
    | _ -> Icmp_error { node = name; reason = rg.a_reason.(i); frame }
  in
  { time = rg.a_time.(i); event }

let ring_records rg =
  let n = ring_length rg in
  let start = if rg.ring_kept <= rg.ring_capacity then 0 else rg.ring_next in
  List.init n (fun i -> ring_record_at rg ((start + i) mod rg.ring_capacity))

let ring_store_record rg (r : record) =
  let time = r.time in
  match r.event with
  | Send { node; frame = f } ->
      ring_store rg time k_send node no_iface no_iface no_reason f.id f.flow
        f.pkt 0
  | Transmit { link; frame = f; bytes } ->
      ring_store rg time k_transmit link no_iface no_iface no_reason f.id
        f.flow f.pkt bytes
  | Forward { node; in_iface; out_iface; frame = f } ->
      ring_store rg time k_forward node in_iface out_iface no_reason f.id
        f.flow f.pkt 0
  | Drop { node; reason; frame = f } ->
      ring_store rg time k_drop node no_iface no_iface reason f.id f.flow
        f.pkt 0
  | Deliver { node; frame = f } ->
      ring_store rg time k_deliver node no_iface no_iface no_reason f.id
        f.flow f.pkt 0
  | Encapsulate { node; frame = f } ->
      ring_store rg time k_encapsulate node no_iface no_iface no_reason f.id
        f.flow f.pkt 0
  | Decapsulate { node; frame = f } ->
      ring_store rg time k_decapsulate node no_iface no_iface no_reason f.id
        f.flow f.pkt 0
  | Icmp_error { node; reason; frame = f } ->
      ring_store rg time k_icmp_error node no_iface no_iface reason f.id
        f.flow f.pkt 0

(* Attached rings, process-wide like sinks.  Usually zero or one. *)
let ring_list : ring list ref = ref []

let ring_arr : ring array ref = ref [||]

let attach_ring rg =
  if not (List.memq rg !ring_list) then begin
    ring_list := !ring_list @ [ rg ];
    ring_arr := Array.of_list !ring_list
  end

let detach_ring rg =
  ring_list := List.filter (fun r -> r != rg) !ring_list;
  ring_arr := Array.of_list !ring_list

let ring_attached rg = List.memq rg !ring_list

let create () =
  {
    rev_records = [];
    count = 0;
    by_flow = Hashtbl.create 64;
    observers = [];
    obs_fns = [||];
    legacy_observer = None;
    enabled = true;
    buffered = false;
    local_on = true;
    time_source = Float.Array.make 1 0.0;
  }

let set_time_source t cell = t.time_source <- cell

let obs_seq = ref 0

let rebuild_observers t =
  t.obs_fns <- Array.of_list (List.map snd t.observers);
  t.local_on <- t.enabled || Array.length t.obs_fns > 0

let add_observer t f =
  incr obs_seq;
  let id = !obs_seq in
  t.observers <- t.observers @ [ (id, f) ];
  rebuild_observers t;
  id

let remove_observer t id =
  t.observers <- List.filter (fun (i, _) -> i <> id) t.observers;
  rebuild_observers t

let set_observer t f =
  (match t.legacy_observer with
  | Some id ->
      remove_observer t id;
      t.legacy_observer <- None
  | None -> ());
  match f with
  | Some f -> t.legacy_observer <- Some (add_observer t f)
  | None -> ()

let set_enabled t b =
  t.enabled <- b;
  t.local_on <- b || Array.length t.obs_fns > 0

let enabled t = t.enabled
let set_buffered t b = t.buffered <- b
let buffered t = t.buffered

let drain t =
  let rs = List.rev t.rev_records in
  t.rev_records <- [];
  t.count <- 0;
  rs

(* Installed observers (invariant oracle), process-wide sinks
   (--trace-json, --pcap) or attached rings (the flight recorder)
   override gating: those consumers must see every event whether or not
   in-memory logging was turned off.  Full-consumer interest is the
   cached [t.local_on || !sink_on] — this test runs for every packet
   hop. *)
let interested t = t.local_on || !sink_on || Array.length !ring_arr > 0

let frame_of = function
  | Send { frame; _ }
  | Transmit { frame; _ }
  | Forward { frame; _ }
  | Drop { frame; _ }
  | Deliver { frame; _ }
  | Encapsulate { frame; _ }
  | Decapsulate { frame; _ }
  | Icmp_error { frame; _ } ->
      frame

let flow_entry t flow =
  match Hashtbl.find_opt t.by_flow flow with
  | Some e -> e
  | None ->
      let e = { f_rev_records = []; f_transmissions = 0; f_wire_bytes = 0 } in
      Hashtbl.add t.by_flow flow e;
      e

let record_full t ~time event =
  Prof.enter Prof.Trace_emit;
  let r = { time; event } in
  (* The unbounded in-memory log (and the per-flow index over it) fills
     whenever a full consumer is active — a run that installs an
     observer or sink with tracing "off" still gets the normal log, as
     it always has.  Only ring-only runs skip it, so a capacity run with
     just the flight recorder attached pays the ring store, not
     list/hashtable growth. *)
  if t.local_on || !sink_on then begin
    t.rev_records <- r :: t.rev_records;
    t.count <- t.count + 1;
    let e = flow_entry t (frame_of event).flow in
    e.f_rev_records <- r :: e.f_rev_records;
    match event with
    | Transmit { bytes; _ } ->
        e.f_transmissions <- e.f_transmissions + 1;
        e.f_wire_bytes <- e.f_wire_bytes + bytes
    | _ -> ()
  end;
  let obs = t.obs_fns in
  for i = 0 to Array.length obs - 1 do
    obs.(i) r
  done;
  let snk = !sink_fns in
  for i = 0 to Array.length snk - 1 do
    snk.(i) r
  done;
  (* Replay into attached rings so they see events from un-specialised
     emit sites (drops, ICMP, mobile-IP encap/decap) and from runs where
     full consumers forced this path. *)
  (let rs = !ring_arr in
   if Array.length rs > 0 then
     for i = 0 to Array.length rs - 1 do
       ring_store_record (Array.unsafe_get rs i) r
     done);
  Prof.leave Prof.Trace_emit

let record t ~time event =
  if t.buffered then begin
    (* Shard-local quarantine: append only.  No per-flow index, no
       observers, no process-wide sinks or rings, and no Prof bracket —
       the profiler's accumulators are process globals and this path runs
       inside a shard's domain.  The barrier coordinator drains and
       replays through the main trace's full path. *)
    t.rev_records <- { time; event } :: t.rev_records;
    t.count <- t.count + 1
  end
  else record_full t ~time event

(* Specialised emit points for the hottest data-plane events.  With only
   rings interested these cost a handful of loads and stores per event;
   with any full consumer attached they fall back to [record] (which
   replays into rings).  The ring loop is open-coded in each body and the
   profiler probe guarded by a direct flag read: on the capacity fast
   path even a no-op cross-module call per event shows up in E20. *)

let emit_send t ~node ~id ~flow ~pkt =
  if t.local_on || !sink_on then
    record t
      ~time:(Float.Array.unsafe_get t.time_source 0)
      (Send { node; frame = { id; flow; pkt } })
  else
    (* no Prof bracket here: the ring store is a few dozen ns and the
       [record] path keeps Trace_emit attribution for full consumers *)
    let rs = !ring_arr in
    for i = 0 to Array.length rs - 1 do
      ring_store_cell (Array.unsafe_get rs i) t.time_source k_send node
        no_iface no_iface no_reason id flow pkt 0
    done

let emit_transmit t ~link ~id ~flow ~pkt ~bytes =
  if t.local_on || !sink_on then
    record t
      ~time:(Float.Array.unsafe_get t.time_source 0)
      (Transmit { link; frame = { id; flow; pkt }; bytes })
  else
    let rs = !ring_arr in
    for i = 0 to Array.length rs - 1 do
      ring_store_cell (Array.unsafe_get rs i) t.time_source k_transmit link
        no_iface no_iface no_reason id flow pkt bytes
    done

let emit_forward t ~node ~in_iface ~out_iface ~id ~flow ~pkt =
  if t.local_on || !sink_on then
    record t
      ~time:(Float.Array.unsafe_get t.time_source 0)
      (Forward { node; in_iface; out_iface; frame = { id; flow; pkt } })
  else
    let rs = !ring_arr in
    for i = 0 to Array.length rs - 1 do
      ring_store_cell (Array.unsafe_get rs i) t.time_source k_forward node
        in_iface out_iface no_reason id flow pkt 0
    done

let emit_deliver t ~node ~id ~flow ~pkt =
  if t.local_on || !sink_on then
    record t
      ~time:(Float.Array.unsafe_get t.time_source 0)
      (Deliver { node; frame = { id; flow; pkt } })
  else
    let rs = !ring_arr in
    for i = 0 to Array.length rs - 1 do
      ring_store_cell (Array.unsafe_get rs i) t.time_source k_deliver node
        no_iface no_iface no_reason id flow pkt 0
    done

(* Tunnel events ride the same fast path: on a roamed topology every
   tunneled packet pays one of these per encap/decap hop, which would
   otherwise be the only per-packet event still allocating a record
   graph on ring-only runs. *)
let emit_encapsulate t ~node ~id ~flow ~pkt =
  if t.local_on || !sink_on then
    record t
      ~time:(Float.Array.unsafe_get t.time_source 0)
      (Encapsulate { node; frame = { id; flow; pkt } })
  else
    let rs = !ring_arr in
    for i = 0 to Array.length rs - 1 do
      ring_store_cell (Array.unsafe_get rs i) t.time_source k_encapsulate node
        no_iface no_iface no_reason id flow pkt 0
    done

let emit_decapsulate t ~node ~id ~flow ~pkt =
  if t.local_on || !sink_on then
    record t
      ~time:(Float.Array.unsafe_get t.time_source 0)
      (Decapsulate { node; frame = { id; flow; pkt } })
  else
    let rs = !ring_arr in
    for i = 0 to Array.length rs - 1 do
      ring_store_cell (Array.unsafe_get rs i) t.time_source k_decapsulate node
        no_iface no_iface no_reason id flow pkt 0
    done

let records t = List.rev t.rev_records

let clear t =
  t.rev_records <- [];
  t.count <- 0;
  Hashtbl.reset t.by_flow

let length t = t.count

let flows t =
  Hashtbl.fold (fun flow _ acc -> flow :: acc) t.by_flow []
  |> List.sort compare

let flow_records t ~flow =
  match Hashtbl.find_opt t.by_flow flow with
  | None -> []
  | Some e -> List.rev e.f_rev_records

let transmissions t ~flow =
  match Hashtbl.find_opt t.by_flow flow with
  | None -> 0
  | Some e -> e.f_transmissions

let wire_bytes t ~flow =
  match Hashtbl.find_opt t.by_flow flow with
  | None -> 0
  | Some e -> e.f_wire_bytes

let delivery_time t ~flow ~node =
  List.find_map
    (fun r ->
      match r.event with
      | Deliver { node = n; frame } when n = node && frame.flow = flow ->
          Some r.time
      | _ -> None)
    (flow_records t ~flow)

let delivered t ~flow ~node = delivery_time t ~flow ~node <> None

let send_time t ~flow =
  List.find_map
    (fun r ->
      match r.event with
      | Send { frame; _ } when frame.flow = flow -> Some r.time
      | _ -> None)
    (flow_records t ~flow)

let drops t ~flow =
  List.filter_map
    (fun r ->
      match r.event with
      | Drop { node; reason; frame } when frame.flow = flow ->
          Some (node, reason)
      | _ -> None)
    (flow_records t ~flow)

let path t ~flow =
  List.filter_map
    (fun r ->
      match r.event with
      | Send { node; frame }
      | Forward { node; frame; _ }
      | Deliver { node; frame }
      | Encapsulate { node; frame }
      | Decapsulate { node; frame }
        when frame.flow = flow ->
          Some node
      | _ -> None)
    (flow_records t ~flow)
  |> List.fold_left
       (fun acc node ->
         match acc with
         | last :: _ when last = node -> acc
         | _ -> node :: acc)
       []
  |> List.rev

let pp_frame fmt (f : frame_info) =
  Format.fprintf fmt "#%d/f%d %a" f.id f.flow Ipv4_packet.pp f.pkt

let pp_event fmt = function
  | Send { node; frame } -> Format.fprintf fmt "send    %-8s %a" node pp_frame frame
  | Transmit { link; frame; bytes } ->
      Format.fprintf fmt "wire    %-8s %dB %a" link bytes pp_frame frame
  | Forward { node; in_iface; out_iface; frame } ->
      Format.fprintf fmt "forward %-8s %s->%s %a" node in_iface out_iface
        pp_frame frame
  | Drop { node; reason; frame } ->
      Format.fprintf fmt "DROP    %-8s %a %a" node pp_drop_reason reason
        pp_frame frame
  | Deliver { node; frame } ->
      Format.fprintf fmt "deliver %-8s %a" node pp_frame frame
  | Encapsulate { node; frame } ->
      Format.fprintf fmt "encap   %-8s %a" node pp_frame frame
  | Decapsulate { node; frame } ->
      Format.fprintf fmt "decap   %-8s %a" node pp_frame frame
  | Icmp_error { node; reason; frame } ->
      Format.fprintf fmt "icmperr %-8s %a %a" node pp_drop_reason reason
        pp_frame frame

let pp_record fmt r = Format.fprintf fmt "%8.4f %a" r.time pp_event r.event

let dump fmt t =
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_record r) (records t)
