type drop_reason =
  | Ingress_filter
  | Transit_filter
  | Firewall of string
  | Ttl_expired
  | No_route
  | Mtu_exceeded
  | Arp_unresolved
  | Not_for_me
  | Link_down
  | Link_loss
  | Reassembly_timeout
  | Custom of string

let pp_drop_reason fmt = function
  | Ingress_filter -> Format.pp_print_string fmt "ingress-source-filter"
  | Transit_filter -> Format.pp_print_string fmt "transit-filter"
  | Firewall s -> Format.fprintf fmt "firewall(%s)" s
  | Ttl_expired -> Format.pp_print_string fmt "ttl-expired"
  | No_route -> Format.pp_print_string fmt "no-route"
  | Mtu_exceeded -> Format.pp_print_string fmt "mtu-exceeded"
  | Arp_unresolved -> Format.pp_print_string fmt "arp-unresolved"
  | Not_for_me -> Format.pp_print_string fmt "not-for-me"
  | Link_down -> Format.pp_print_string fmt "link-down"
  | Link_loss -> Format.pp_print_string fmt "link-loss"
  | Reassembly_timeout -> Format.pp_print_string fmt "reassembly-timeout"
  | Custom s -> Format.fprintf fmt "custom(%s)" s

let drop_reason_equal (a : drop_reason) b = a = b

type frame_info = { id : int; flow : int; pkt : Ipv4_packet.t }

type event =
  | Send of { node : string; frame : frame_info }
  | Transmit of { link : string; frame : frame_info; bytes : int }
  | Forward of {
      node : string;
      in_iface : string;
      out_iface : string;
      frame : frame_info;
    }
  | Drop of { node : string; reason : drop_reason; frame : frame_info }
  | Deliver of { node : string; frame : frame_info }
  | Encapsulate of { node : string; frame : frame_info }
  | Decapsulate of { node : string; frame : frame_info }

type record = { time : float; event : event }

type t = { mutable rev_records : record list; mutable count : int }

let create () = { rev_records = []; count = 0 }

let record t ~time event =
  t.rev_records <- { time; event } :: t.rev_records;
  t.count <- t.count + 1

let records t = List.rev t.rev_records

let clear t =
  t.rev_records <- [];
  t.count <- 0

let length t = t.count

let frame_of = function
  | Send { frame; _ }
  | Transmit { frame; _ }
  | Forward { frame; _ }
  | Drop { frame; _ }
  | Deliver { frame; _ }
  | Encapsulate { frame; _ }
  | Decapsulate { frame; _ } ->
      frame

let flow_records t ~flow =
  List.filter (fun r -> (frame_of r.event).flow = flow) (records t)

let transmissions t ~flow =
  List.fold_left
    (fun acc r ->
      match r.event with
      | Transmit { frame; _ } when frame.flow = flow -> acc + 1
      | _ -> acc)
    0 (records t)

let wire_bytes t ~flow =
  List.fold_left
    (fun acc r ->
      match r.event with
      | Transmit { frame; bytes; _ } when frame.flow = flow -> acc + bytes
      | _ -> acc)
    0 (records t)

let delivery_time t ~flow ~node =
  List.find_map
    (fun r ->
      match r.event with
      | Deliver { node = n; frame } when n = node && frame.flow = flow ->
          Some r.time
      | _ -> None)
    (records t)

let delivered t ~flow ~node = delivery_time t ~flow ~node <> None

let send_time t ~flow =
  List.find_map
    (fun r ->
      match r.event with
      | Send { frame; _ } when frame.flow = flow -> Some r.time
      | _ -> None)
    (records t)

let drops t ~flow =
  List.filter_map
    (fun r ->
      match r.event with
      | Drop { node; reason; frame } when frame.flow = flow ->
          Some (node, reason)
      | _ -> None)
    (records t)

let path t ~flow =
  List.filter_map
    (fun r ->
      match r.event with
      | Send { node; frame }
      | Forward { node; frame; _ }
      | Deliver { node; frame }
      | Encapsulate { node; frame }
      | Decapsulate { node; frame }
        when frame.flow = flow ->
          Some node
      | _ -> None)
    (records t)
  |> List.fold_left
       (fun acc node ->
         match acc with
         | last :: _ when last = node -> acc
         | _ -> node :: acc)
       []
  |> List.rev

let pp_frame fmt (f : frame_info) =
  Format.fprintf fmt "#%d/f%d %a" f.id f.flow Ipv4_packet.pp f.pkt

let pp_event fmt = function
  | Send { node; frame } -> Format.fprintf fmt "send    %-8s %a" node pp_frame frame
  | Transmit { link; frame; bytes } ->
      Format.fprintf fmt "wire    %-8s %dB %a" link bytes pp_frame frame
  | Forward { node; in_iface; out_iface; frame } ->
      Format.fprintf fmt "forward %-8s %s->%s %a" node in_iface out_iface
        pp_frame frame
  | Drop { node; reason; frame } ->
      Format.fprintf fmt "DROP    %-8s %a %a" node pp_drop_reason reason
        pp_frame frame
  | Deliver { node; frame } ->
      Format.fprintf fmt "deliver %-8s %a" node pp_frame frame
  | Encapsulate { node; frame } ->
      Format.fprintf fmt "encap   %-8s %a" node pp_frame frame
  | Decapsulate { node; frame } ->
      Format.fprintf fmt "decap   %-8s %a" node pp_frame frame

let pp_record fmt r = Format.fprintf fmt "%8.4f %a" r.time pp_event r.event

let dump fmt t =
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_record r) (records t)
