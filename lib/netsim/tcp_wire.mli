(** TCP segment wire format (RFC 793, no options).

    The simulator's transport library ({!module:Transport.Tcp}) builds its
    connection machinery on these segments.  Sequence and acknowledgement
    numbers are plain [int]s held in [0 .. 2^32-1]; arithmetic helpers wrap
    modulo 2^32. *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

val no_flags : flags
val flag_syn : flags
val flag_syn_ack : flags
val flag_ack : flags
val flag_fin_ack : flags
val flag_rst : flags
val pp_flags : Format.formatter -> flags -> unit

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_n : int;
  flags : flags;
  window : int;
  payload : Bytes.t;
}

val header_length : int
(** 20 bytes (options unsupported). *)

val make :
  src_port:int ->
  dst_port:int ->
  seq:int ->
  ack_n:int ->
  flags:flags ->
  ?window:int ->
  Bytes.t ->
  t
(** @raise Invalid_argument on out-of-range ports, sequence numbers or
    window. *)

val byte_length : t -> int
val seq_add : int -> int -> int
(** Sequence arithmetic modulo 2^32. *)

val encode : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> t -> Bytes.t
val decode :
  src:Ipv4_addr.t -> dst:Ipv4_addr.t -> Bytes.t -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
