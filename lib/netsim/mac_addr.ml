type t = int

let limit = 1 lsl 48

let of_int x =
  if x < 0 || x >= limit then
    invalid_arg (Printf.sprintf "Mac_addr.of_int: %d out of range" x);
  x

let to_int x = x

let of_string s =
  match String.split_on_char ':' s with
  | [ _; _; _; _; _; _ ] as parts ->
      List.fold_left
        (fun acc p ->
          match int_of_string_opt ("0x" ^ p) with
          | Some b when b >= 0 && b <= 255 && String.length p <= 2 ->
              (acc lsl 8) lor b
          | _ -> invalid_arg (Printf.sprintf "Mac_addr.of_string: %S" s))
        0 parts
  | _ -> invalid_arg (Printf.sprintf "Mac_addr.of_string: %S" s)

let to_string x =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((x lsr 40) land 0xff)
    ((x lsr 32) land 0xff)
    ((x lsr 24) land 0xff)
    ((x lsr 16) land 0xff)
    ((x lsr 8) land 0xff)
    (x land 0xff)

let broadcast = limit - 1
let is_broadcast x = x = broadcast
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt x = Format.pp_print_string fmt (to_string x)

let counter = ref 0

let fresh () =
  incr counter;
  (* 0x02 prefix: locally administered, unicast. *)
  (0x02 lsl 40) lor (!counter land 0xff_ffff_ffff)
