type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

let no_flags =
  { syn = false; ack = false; fin = false; rst = false; psh = false; urg = false }

let flag_syn = { no_flags with syn = true }
let flag_syn_ack = { no_flags with syn = true; ack = true }
let flag_ack = { no_flags with ack = true }
let flag_fin_ack = { no_flags with fin = true; ack = true }
let flag_rst = { no_flags with rst = true }

let pp_flags fmt f =
  let names =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [
        (f.syn, "SYN"); (f.ack, "ACK"); (f.fin, "FIN");
        (f.rst, "RST"); (f.psh, "PSH"); (f.urg, "URG");
      ]
  in
  Format.pp_print_string fmt
    (if names = [] then "-" else String.concat "|" names)

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_n : int;
  flags : flags;
  window : int;
  payload : Bytes.t;
}

let header_length = 20
let seq_modulus = 0x1_0000_0000
let seq_add a b = (a + b) mod seq_modulus

let make ~src_port ~dst_port ~seq ~ack_n ~flags ?(window = 65535) payload =
  let check name v limit =
    if v < 0 || v >= limit then
      invalid_arg (Printf.sprintf "Tcp_wire.make: %s %d out of range" name v)
  in
  check "src_port" src_port 0x10000;
  check "dst_port" dst_port 0x10000;
  check "seq" seq seq_modulus;
  check "ack" ack_n seq_modulus;
  check "window" window 0x10000;
  { src_port; dst_port; seq; ack_n; flags; window; payload }

let byte_length t = header_length + Bytes.length t.payload

let set_u16 buf off v =
  Bytes.set buf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set buf (off + 1) (Char.chr (v land 0xff))

let get_u16 buf off =
  (Char.code (Bytes.get buf off) lsl 8) lor Char.code (Bytes.get buf (off + 1))

let set_u32 buf off v =
  set_u16 buf off ((v lsr 16) land 0xffff);
  set_u16 buf (off + 2) (v land 0xffff)

let get_u32 buf off = (get_u16 buf off lsl 16) lor get_u16 buf (off + 2)

let flags_byte f =
  (if f.urg then 0x20 else 0)
  lor (if f.ack then 0x10 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.syn then 0x02 else 0)
  lor if f.fin then 0x01 else 0

let flags_of_byte b =
  {
    urg = b land 0x20 <> 0;
    ack = b land 0x10 <> 0;
    psh = b land 0x08 <> 0;
    rst = b land 0x04 <> 0;
    syn = b land 0x02 <> 0;
    fin = b land 0x01 <> 0;
  }

let encode ~src ~dst t =
  let len = byte_length t in
  let buf = Bytes.make len '\000' in
  set_u16 buf 0 t.src_port;
  set_u16 buf 2 t.dst_port;
  set_u32 buf 4 t.seq;
  set_u32 buf 8 t.ack_n;
  (* Data offset: 5 32-bit words, no options. *)
  Bytes.set buf 12 (Char.chr (5 lsl 4));
  Bytes.set buf 13 (Char.chr (flags_byte t.flags));
  set_u16 buf 14 t.window;
  set_u16 buf 16 0;
  set_u16 buf 18 0;
  Bytes.blit t.payload 0 buf 20 (Bytes.length t.payload);
  let pseudo = Checksum.pseudo_header_sum ~src ~dst ~protocol:6 ~length:len in
  let sum = Checksum.ones_complement_sum ~initial:pseudo buf 0 len in
  set_u16 buf 16 (Checksum.finish sum);
  buf

let decode ~src ~dst buf =
  let n = Bytes.length buf in
  if n < header_length then Error "tcp: truncated header"
  else
    let data_offset = (Char.code (Bytes.get buf 12) lsr 4) * 4 in
    if data_offset < header_length || data_offset > n then
      Error "tcp: bad data offset"
    else
      let pseudo =
        Checksum.pseudo_header_sum ~src ~dst ~protocol:6 ~length:n
      in
      let sum = Checksum.ones_complement_sum ~initial:pseudo buf 0 n in
      if sum land 0xffff <> 0xffff then Error "tcp: bad checksum"
      else
        Ok
          {
            src_port = get_u16 buf 0;
            dst_port = get_u16 buf 2;
            seq = get_u32 buf 4;
            ack_n = get_u32 buf 8;
            flags = flags_of_byte (Char.code (Bytes.get buf 13));
            window = get_u16 buf 14;
            payload = Bytes.sub buf data_offset (n - data_offset);
          }

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port && a.seq = b.seq
  && a.ack_n = b.ack_n && a.flags = b.flags && a.window = b.window
  && Bytes.equal a.payload b.payload

let pp fmt t =
  Format.fprintf fmt "TCP %d->%d seq=%d ack=%d [%a] (%d bytes)" t.src_port
    t.dst_port t.seq t.ack_n pp_flags t.flags (Bytes.length t.payload)
