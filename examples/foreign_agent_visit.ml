(* Attaching through a foreign agent (paper §2, §5).

   The visited network provides an IETF-style foreign agent instead of
   DHCP: the mobile host keeps its home address, discovers the agent from
   its broadcast advertisements, registers through it, and receives
   packets that the home agent tunnels to the FA, which delivers the last
   hop link-layer-direct (In-DH).  As the paper notes, this convenience
   costs the mobile host its freedom to pick per-packet optimizations.

   Run with: dune exec examples/foreign_agent_visit.exe *)

open Netsim

let a = Ipv4_addr.of_string

let () =
  let topo = Scenarios.Topo.build () in
  (* The visited network operates a foreign agent (a router on the
     segment). *)
  let fa_node = Net.add_router topo.Scenarios.Topo.net "fa" in
  let fa_iface =
    Net.attach fa_node topo.Scenarios.Topo.visited_segment ~ifname:"lan"
      ~addr:(a "131.7.0.3") ~prefix:topo.Scenarios.Topo.visited_prefix
  in
  Routing.add_default (Net.routing fa_node) ~gateway:(a "131.7.0.1")
    ~iface:"lan";
  let fa =
    Mobileip.Foreign_agent.create fa_node ~iface:fa_iface ~advert_interval:1.0 ()
  in

  (* The arriving mobile host listens for an agent advertisement, then
     registers through the agent it found. *)
  let mh = topo.Scenarios.Topo.mh in
  Mobileip.Foreign_agent.on_advert topo.Scenarios.Topo.mh_node
    (fun ~fa_addr ->
      Format.printf "heard agent advertisement from %s@."
        (Ipv4_addr.to_string fa_addr);
      Mobileip.Mobile_host.move_to_foreign_agent mh
        topo.Scenarios.Topo.visited_segment ~fa_addr
        ~on_registered:(fun ok ->
          Format.printf "registration relayed through the FA: %s@."
            (if ok then "accepted" else "FAILED"))
        ());
  (* Join the segment so the advertisement can be heard. *)
  Net.reattach
    (Option.get (Net.find_iface topo.Scenarios.Topo.mh_node "eth0"))
    topo.Scenarios.Topo.visited_segment;
  Scenarios.Topo.run topo;

  Format.printf "care-of address (= the FA): %s; visitors at the FA: %d@."
    (match Mobileip.Mobile_host.care_of_address mh with
    | Some c -> Ipv4_addr.to_string c
    | None -> "-")
    (List.length (Mobileip.Foreign_agent.visitors fa));

  (* A correspondent pings the home address: HA tunnel -> FA -> one
     link-layer hop. *)
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt -> Format.printf "ping via HA and FA: %.1f ms@." (rtt *. 1000.));
  Scenarios.Topo.run topo;
  Format.printf "final-hop deliveries performed by the FA: %d@."
    (Mobileip.Foreign_agent.packets_delivered fa);
  Format.printf "note: via_foreign_agent=%b -- per-packet optimizations are off@."
    (Mobileip.Mobile_host.via_foreign_agent mh)
