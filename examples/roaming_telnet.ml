(* A long-lived telnet session that survives movement (paper §2: "on our
   laptop computers running Linux we frequently have idle telnet
   connections that are preserved for hours ... while the laptop is
   sitting unused in sleep mode").

   The session is bound to the home address; the host works at home, moves
   to a visited network mid-session, keeps typing, then comes home again —
   the TCP connection never notices.

   Run with: dune exec examples/roaming_telnet.exe *)

let () =
  let topo = Scenarios.Topo.build () in
  let net = topo.Scenarios.Topo.net in

  (* A telnet server on the correspondent echoes keystrokes. *)
  Scenarios.Workload.tcp_echo_server topo.Scenarios.Topo.ch_node
    ~port:Transport.Well_known.telnet;

  (* Connect while at home, bound to the home address (the default for an
     application that is not mobile-aware). *)
  let tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
  let conn =
    Transport.Tcp.connect tcp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~dst_port:Transport.Well_known.telnet ()
  in
  let echoes = ref 0 in
  Transport.Tcp.on_receive conn (fun _ -> incr echoes);
  let type_lines n =
    for _ = 1 to n do
      Transport.Tcp.send_data conn (Bytes.of_string "make world\n")
    done;
    Netsim.Net.run net
  in

  let report phase =
    Format.printf "%-28s state=%a echoes=%d location=%s@." phase
      Transport.Tcp.pp_state (Transport.Tcp.state conn) !echoes
      (match Mobileip.Mobile_host.care_of_address topo.Scenarios.Topo.mh with
      | Some coa -> "away @ " ^ Netsim.Ipv4_addr.to_string coa
      | None -> "at home")
  in

  type_lines 3;
  report "working at home:";

  Scenarios.Topo.roam topo ();
  type_lines 3;
  report "moved to visited network:";

  Scenarios.Topo.come_home topo;
  type_lines 3;
  report "back home again:";

  Format.printf "retransmissions over the whole session: %d@."
    (Transport.Tcp.retransmissions conn);
  assert (Transport.Tcp.state conn = Transport.Tcp.Established);
  assert (!echoes = 9);
  Format.printf "the connection survived two moves.@."
