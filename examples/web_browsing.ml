(* Forgoing Mobile IP for Web browsing (paper §4 Out-DT, §6.4 Row D,
   §7.1.1 heuristics): "HTTP connections are frequently very short lived
   ... the user may prefer the small risk of an occasional incomplete
   image, rather than the large cost of slowing down all Web browsing with
   the overhead of using Mobile IP for every connection."

   A roaming host fetches pages two ways and compares:
   - bound to the home address with the conservative Out-IE default
     (every packet detours through the home agent, both directions);
   - letting the port-80 heuristic choose Out-DT (plain packets, direct,
     replies come straight back to the care-of address).

   Run with: dune exec examples/web_browsing.exe *)

let fetch topo ~src =
  let t0 = Netsim.Net.now topo.Scenarios.Topo.net in
  let ok, _ =
    Scenarios.Workload.http_fetch ~net:topo.Scenarios.Topo.net
      ~client:topo.Scenarios.Topo.mh_node
      ~server_addr:topo.Scenarios.Topo.ch_addr ?src ()
  in
  (ok, Netsim.Net.now topo.Scenarios.Topo.net -. t0)

let () =
  let topo = Scenarios.Topo.build () in
  Scenarios.Workload.install_http_server topo.Scenarios.Topo.ch_node ();
  Scenarios.Topo.roam topo ();
  let mh = topo.Scenarios.Topo.mh in

  (* Via Mobile IP: bound to the home address, conservative default. *)
  Mobileip.Mobile_host.set_default_method mh Mobileip.Grid.Out_IE;
  let ok_mip, time_mip =
    fetch topo ~src:(Some (Mobileip.Mobile_host.home_address mh))
  in
  Format.printf "fetch via Mobile IP (Out-IE):   %s in %.1f ms@."
    (if ok_mip then "ok" else "FAILED")
    (time_mip *. 1000.);

  (* Application asks the mobility software which address to use for a Web
     connection: the §7.1.1 answer is the care-of address for port 80. *)
  let src = Mobileip.Mobile_host.choose_source mh ~tcp_port:Transport.Well_known.http () in
  Format.printf "choose_source for port 80:      %s (care-of: bypass Mobile IP)@."
    (Netsim.Ipv4_addr.to_string src);
  let ok_dt, time_dt = fetch topo ~src:(Some src) in
  Format.printf "fetch with Out-DT (no MIP):     %s in %.1f ms@."
    (if ok_dt then "ok" else "FAILED")
    (time_dt *. 1000.);

  Format.printf "browsing speedup from forgoing Mobile IP: %.1fx@."
    (time_mip /. time_dt);

  (* The cost: move mid-fetch and the Out-DT connection breaks — the
     browser shows a broken icon and the user clicks reload. *)
  let tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
  let conn =
    Transport.Tcp.connect tcp ~src
      ~dst:topo.Scenarios.Topo.ch_addr ~dst_port:Transport.Well_known.http ()
  in
  Scenarios.Topo.run topo;
  Scenarios.Topo.come_home topo;
  Transport.Tcp.send_data conn (Bytes.of_string "GET /big.gif HTTP/1.0\r\n\r\n");
  Scenarios.Topo.run topo;
  Format.printf "fetch interrupted by moving:    connection %a (click reload!)@."
    Transport.Tcp.pp_state (Transport.Tcp.state conn)
