(* Location privacy (paper §4, Out-IE motivation: "mobile users may not
   wish to reveal their current location to the correspondent host.  In
   these cases, sending all outgoing packets indirectly via the home agent
   may be the method the user wants, even when other more efficient
   alternatives are also available").

   The mobile host roams right next to the correspondent.  Without privacy
   mode the selector would happily go direct; with privacy mode on, every
   packet detours through the distant home agent and the correspondent
   only ever sees the home address.

   Run with: dune exec examples/privacy_roaming.exe *)

open Netsim

let observed_sources = ref []

let () =
  let topo =
    Scenarios.Topo.build ~backbone_hops:6
      ~ch_position:Scenarios.Topo.Near_visited ()
  in
  Scenarios.Topo.roam topo ();
  let mh = topo.Scenarios.Topo.mh in

  (* The correspondent records every source address it ever sees. *)
  Net.set_delivery_observer topo.Scenarios.Topo.ch_node
    (Some
       (fun pkt ->
         let s = Ipv4_addr.to_string pkt.Ipv4_packet.src in
         if not (List.mem s !observed_sources) then
           observed_sources := s :: !observed_sources));

  let chat () =
    let udp = Transport.Udp_service.get topo.Scenarios.Topo.mh_node in
    for i = 0 to 4 do
      ignore
        (Transport.Udp_service.send udp
           ~src:(Mobileip.Mobile_host.home_address mh)
           ~dst:topo.Scenarios.Topo.ch_addr ~src_port:(6000 + i) ~dst_port:9
           (Bytes.of_string "confidential whereabouts"))
    done;
    Scenarios.Topo.run topo
  in

  Mobileip.Mobile_host.set_privacy mh true;
  Format.printf "privacy mode: %b@." (Mobileip.Mobile_host.privacy mh);
  Format.printf "method used toward the correspondent: %s@."
    (Mobileip.Grid.out_to_string
       (Mobileip.Mobile_host.out_method_for mh ~dst:topo.Scenarios.Topo.ch_addr));
  chat ();
  Format.printf "source addresses the correspondent observed: %s@."
    (String.concat ", " !observed_sources);
  Format.printf "home agent relays (reverse tunnel): %d@."
    (Mobileip.Home_agent.packets_reverse_tunneled topo.Scenarios.Topo.ha);
  let coa =
    Ipv4_addr.to_string
      (Option.get (Mobileip.Mobile_host.care_of_address mh))
  in
  assert (not (List.mem coa !observed_sources));
  Format.printf "the care-of address %s never appeared on the wire at the \
                 correspondent.@."
    coa
