(* Address-based trust while roaming (paper §3.1).

   The home institution's file server exports to home addresses only, and
   the home boundary router performs ingress source-address filtering.
   From a visited network:

   - Out-DT (temporary source) reaches the server but is refused: the
     care-of address is not in the export list;
   - Out-DH (plain home source) never arrives: the boundary filter kills
     it as a spoof — the same filter that protects the server from real
     attackers;
   - Out-IE (reverse tunnel) arrives bearing the home source address from
     inside the home network, and the file comes back.

   Run with: dune exec examples/mobile_nfs.exe *)

open Netsim

let a = Ipv4_addr.of_string

let () =
  let topo =
    Scenarios.Topo.build ~filtering:Scenarios.Topo.ingress_only ()
  in
  let nfs_node = Net.add_host topo.Scenarios.Topo.net "nfsd" in
  ignore
    (Net.attach nfs_node topo.Scenarios.Topo.home_segment ~ifname:"eth0"
       ~addr:(a "36.1.0.40") ~prefix:topo.Scenarios.Topo.home_prefix);
  Routing.add_default (Net.routing nfs_node) ~gateway:(a "36.1.0.1")
    ~iface:"eth0";
  let _server =
    Scenarios.Nfs.Server.create nfs_node
      ~exports:[ ("/home/mary/thesis.tex", Bytes.make 4096 't') ]
      ~trusted:[ topo.Scenarios.Topo.home_prefix ]
      ()
  in
  Scenarios.Topo.roam topo ();
  let mh = topo.Scenarios.Topo.mh in
  let coa = Option.get (Mobileip.Mobile_host.care_of_address mh) in

  let attempt label ~src ~out_method =
    Mobileip.Mobile_host.set_default_method mh out_method;
    let r =
      Scenarios.Nfs.Client.read ~net:topo.Scenarios.Topo.net
        topo.Scenarios.Topo.mh_node ~server:(a "36.1.0.40") ~src
        ~path:"/home/mary/thesis.tex" ()
    in
    Format.printf "%-34s %s@." label
      (match r with
      | Some res -> Format.asprintf "%a" Scenarios.Nfs.Client.pp_result res
      | None -> "no reply (filtered en route)")
  in
  attempt "Out-DT (care-of source):" ~src:coa ~out_method:Mobileip.Grid.Out_DT;
  attempt "Out-DH (plain home source):"
    ~src:topo.Scenarios.Topo.mh_home_addr ~out_method:Mobileip.Grid.Out_DH;
  attempt "Out-IE (reverse tunnel):" ~src:topo.Scenarios.Topo.mh_home_addr
    ~out_method:Mobileip.Grid.Out_IE;
  Format.printf
    "only the reverse tunnel presents the trusted home address from inside \
     the home network.@."
