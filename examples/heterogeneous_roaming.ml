(* Heterogeneous attachments (paper §1): "mobile hosts ... need to switch
   between different types of networks (cellular telephone, packet radio,
   Ethernet, etc.) to achieve the best possible connectivity wherever they
   are located", and mobility support must live at the IP layer precisely
   so the same connections survive across all of them.

   One telnet session, three attachments: the visited Ethernet, a
   cellular-modem-style link (150 ms, 9600 bit/s, 2% loss), and home
   again.  Same TCP connection throughout; keepalive re-registers the
   binding automatically while away.

   Run with: dune exec examples/heterogeneous_roaming.exe *)

let () =
  let topo = Scenarios.Topo.build ~with_cellular:true () in
  let net = topo.Scenarios.Topo.net in
  let mh = topo.Scenarios.Topo.mh in
  Mobileip.Mobile_host.enable_keepalive mh ~max_renewals:5 ();
  Scenarios.Workload.tcp_echo_server topo.Scenarios.Topo.ch_node
    ~port:Transport.Well_known.telnet;

  let tcp = Transport.Tcp.get topo.Scenarios.Topo.mh_node in
  let conn =
    Transport.Tcp.connect tcp ~src:topo.Scenarios.Topo.mh_home_addr
      ~dst:topo.Scenarios.Topo.ch_addr ~dst_port:Transport.Well_known.telnet ()
  in
  let echoes = ref 0 in
  Transport.Tcp.on_receive conn (fun _ -> incr echoes);

  let phase name =
    let t0 = Netsim.Net.now net in
    let before = !echoes in
    for _ = 1 to 5 do
      Transport.Tcp.send_data conn (Bytes.of_string "uptime\n")
    done;
    Netsim.Net.run net;
    Format.printf "%-24s echoes %d/5 in %6.2f s  (state %a, retx so far %d)@."
      name (!echoes - before)
      (Netsim.Net.now net -. t0)
      Transport.Tcp.pp_state (Transport.Tcp.state conn)
      (Transport.Tcp.retransmissions conn)
  in

  Netsim.Net.run net;
  phase "at home (Ethernet):";
  Scenarios.Topo.roam topo ();
  phase "visited Ethernet:";
  Scenarios.Topo.roam_cellular topo ();
  phase "cellular modem:";
  Scenarios.Topo.come_home topo;
  phase "home again:";
  assert (Transport.Tcp.state conn = Transport.Tcp.Established);
  Format.printf
    "one TCP connection, four attachments, zero application changes.@."
