(* Quickstart: the smallest complete Mobile IP world.

   Builds the standard topology (home domain, backbone, visited domain,
   remote correspondent), sends the mobile host roaming, and pings it at
   its *home* address from the correspondent.  The packet finds the home
   agent, is tunneled to the care-of address, and the reply returns
   directly — Figure 1 of the paper, in about thirty lines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the world.  The mobile host starts at home. *)
  let topo = Scenarios.Topo.build () in
  let mh = topo.Scenarios.Topo.mh in
  Format.printf "mobile host home address: %s@."
    (Netsim.Ipv4_addr.to_string (Mobileip.Mobile_host.home_address mh));

  (* 2. Roam: attach to the visited network via DHCP and register. *)
  Scenarios.Topo.roam topo ~on_registered:(fun ok ->
      Format.printf "registration with home agent: %s@."
        (if ok then "accepted" else "FAILED")) ();
  (match Mobileip.Mobile_host.care_of_address mh with
  | Some coa ->
      Format.printf "care-of address (from DHCP): %s@."
        (Netsim.Ipv4_addr.to_string coa)
  | None -> assert false);

  (* 3. A conventional correspondent pings the home address. *)
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt -> Format.printf "ping to home address answered in %.1f ms@."
        (rtt *. 1000.));
  Scenarios.Topo.run topo;

  (* 4. The home agent did the work. *)
  Format.printf "packets tunneled by the home agent: %d@."
    (Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha);
  Format.printf "packets decapsulated by the mobile host: %d@."
    (Mobileip.Mobile_host.packets_decapsulated mh)
