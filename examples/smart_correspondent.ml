(* A smart correspondent (paper §3.2, Figure 5): both care-of discovery
   mechanisms in action.

   Host A learns the mobile host's location from the ICMP advertisement
   the home agent sends as it forwards the first packet.  Host B looks the
   mobile host up in the extended DNS, where the roaming host published a
   temporary-address record, and never touches the home agent at all.

   Run with: dune exec examples/smart_correspondent.exe *)

let () =
  let topo =
    Scenarios.Topo.build ~ch_capability:Mobileip.Correspondent.Mobile_aware
      ~notify_correspondents:true ~with_dns:true ()
  in
  Scenarios.Topo.roam topo ();
  let net = topo.Scenarios.Topo.net in
  let home = topo.Scenarios.Topo.mh_home_addr in
  let dns = Option.get topo.Scenarios.Topo.dns_addr in

  (* --- mechanism 1: ICMP care-of advertisements --- *)
  Format.printf "--- ICMP discovery ---@.";
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in
  Transport.Icmp_service.ping icmp ~dst:home (fun ~rtt ->
      Format.printf "ping 1 (via home agent):  %.1f ms@." (rtt *. 1000.));
  Netsim.Net.run net;
  Format.printf "adverts received by correspondent: %d@."
    (Mobileip.Correspondent.adverts_received topo.Scenarios.Topo.ch);
  Transport.Icmp_service.ping icmp ~dst:home (fun ~rtt ->
      Format.printf "ping 2 (In-DE direct):    %.1f ms@." (rtt *. 1000.));
  Netsim.Net.run net;

  (* --- mechanism 2: DNS temporary records --- *)
  Format.printf "--- DNS discovery ---@.";
  (* The mobile host, settled at the visited network, publishes. *)
  let published =
    Mobileip.Discovery.publish_care_of topo.Scenarios.Topo.mh ~dns_server:dns
      ~name:"mh.home" ()
  in
  Format.printf "mobile host published its temporary record: %b@." published;
  Netsim.Net.run net;
  (* A second correspondent resolves before its first packet. *)
  Mobileip.Discovery.discover_via_dns topo.Scenarios.Topo.ch ~dns_server:dns
    ~name:"mh.home"
    ~on_result:(fun ~learned ->
      Format.printf "resolver saw a temporary record: %b@." learned)
    ();
  Netsim.Net.run net;
  (match
     Mobileip.Correspondent.cached_care_of topo.Scenarios.Topo.ch ~home
   with
  | Some coa ->
      Format.printf "binding cache now maps %s -> %s@."
        (Netsim.Ipv4_addr.to_string home)
        (Netsim.Ipv4_addr.to_string coa)
  | None -> Format.printf "no binding (unexpected)@.");
  Format.printf "packets tunneled by the home agent in total: %d@."
    (Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha)
