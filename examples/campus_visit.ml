(* Visiting another institution (paper §5 In-DH: "the best choice when
   visiting another institution and connecting to their network to access
   data or services on that network ... the benefit of avoiding
   communicating through the home agent can be significant, especially if
   the visited institution is in Japan and the home agent is at MIT").

   The mobile host visits a campus and talks to a server on the very
   segment it plugged into.  A mobile-aware local server delivers to the
   home address in a single link-layer hop (In-DH); the mobile host
   replies directly (Out-DH).  No packet crosses a single router.

   Run with: dune exec examples/campus_visit.exe *)

let () =
  (* The home network is 8 backbone hops away — "at MIT". *)
  let topo =
    Scenarios.Topo.build ~backbone_hops:8
      ~ch_position:Scenarios.Topo.On_visited_segment
      ~ch_capability:Mobileip.Correspondent.Mobile_aware
      ~notify_correspondents:true ()
  in
  Scenarios.Topo.roam topo ();
  let net = topo.Scenarios.Topo.net in
  let icmp = Transport.Icmp_service.get topo.Scenarios.Topo.ch_node in

  (* First contact goes the long way (via the home agent) and teaches the
     server where the mobile host really is. *)
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt ->
      Format.printf "first exchange (via home agent): %.1f ms@." (rtt *. 1000.));
  Netsim.Net.run net;

  (* Now the server knows the care-of address is a neighbour: In-DH. *)
  Format.printf "server's delivery method now: %s@."
    (Mobileip.Grid.in_to_string
       (Mobileip.Correspondent.in_method_for topo.Scenarios.Topo.ch
          ~dst:topo.Scenarios.Topo.mh_home_addr));
  Transport.Icmp_service.ping icmp ~dst:topo.Scenarios.Topo.mh_home_addr
    (fun ~rtt ->
      Format.printf "second exchange (single link-layer hop): %.1f ms@."
        (rtt *. 1000.));
  Netsim.Net.run net;

  (* And an actual file transfer stays on the segment. *)
  Scenarios.Workload.tcp_echo_server topo.Scenarios.Topo.ch_node ~port:Transport.Well_known.nfs;
  let stats =
    Scenarios.Workload.tcp_echo_session ~net ~client:topo.Scenarios.Topo.mh_node
      ~server_addr:topo.Scenarios.Topo.ch_addr ~port:Transport.Well_known.nfs
      ~src:topo.Scenarios.Topo.mh_home_addr ~messages:10 ~spacing:0.05
      ~message_size:512 ()
  in
  Format.printf
    "NFS-ish session on the local segment: %d/10 echoed in %.2f s, %d \
     retransmissions@."
    stats.Scenarios.Workload.messages_echoed stats.Scenarios.Workload.elapsed
    stats.Scenarios.Workload.client_retransmissions;
  Format.printf "packets through the home agent during the session: %d@."
    (Mobileip.Home_agent.packets_tunneled topo.Scenarios.Topo.ha)
